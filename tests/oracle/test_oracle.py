"""Unit tests for the ground-truth dependency oracle."""

from repro.core.entry import Entry
from repro.oracle.graph import DependencyOracle


def oracle_with_chain(n=3, deliveries=3, pid=0):
    """An oracle where ``pid`` delivered ``deliveries`` env messages."""
    oracle = DependencyOracle(n)
    for p in range(n):
        oracle.start_process(p)
    for i in range(deliveries):
        oracle.record_delivery(pid, Entry(0, i + 2), None, None)
    return oracle


class TestConstruction:
    def test_start_process_creates_stable_root(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        node = oracle.node((0, 0, 1))
        assert node.stable
        assert not node.rolled_back

    def test_program_order_edges(self):
        oracle = oracle_with_chain(deliveries=2)
        assert oracle.node((0, 0, 3)).preds == [(0, 0, 2)]
        assert oracle.node((0, 0, 2)).preds == [(0, 0, 1)]

    def test_delivery_edge_from_sender(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        oracle.start_process(1)
        oracle.record_delivery(1, Entry(0, 2), sender=0, sender_interval=Entry(0, 1))
        assert (0, 0, 1) in oracle.node((1, 0, 2)).preds

    def test_environment_messages_have_no_sender_edge(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        oracle.record_delivery(0, Entry(0, 2), sender=-1, sender_interval=None)
        assert oracle.node((0, 0, 2)).preds == [(0, 0, 1)]


class TestCausalPast:
    def test_includes_self_and_transitive_closure(self):
        oracle = DependencyOracle(3)
        for p in range(3):
            oracle.start_process(p)
        oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 1))
        oracle.record_delivery(2, Entry(0, 2), 1, Entry(0, 2))
        past = oracle.causal_past((2, 0, 2))
        assert (2, 0, 2) in past
        assert (1, 0, 2) in past
        assert (0, 0, 1) in past
        assert (1, 0, 1) in past  # via program order at P1

    def test_unrelated_interval_excluded(self):
        oracle = oracle_with_chain(n=3)
        oracle.record_delivery(1, Entry(0, 2), None, None)
        assert (1, 0, 2) not in oracle.causal_past((0, 0, 2))


class TestRecovery:
    def test_record_recovery_truncates_chain(self):
        oracle = oracle_with_chain(deliveries=3)
        oracle.record_recovery(0, Entry(0, 2), Entry(1, 3))
        assert oracle.node((0, 0, 3)).rolled_back
        assert oracle.node((0, 0, 4)).rolled_back
        assert not oracle.node((0, 0, 2)).rolled_back
        assert oracle.live_interval(0) == (0, 1, 3)

    def test_new_incarnation_linked_to_survivor(self):
        oracle = oracle_with_chain(deliveries=2)
        oracle.record_recovery(0, Entry(0, 2), Entry(1, 3))
        assert oracle.node((0, 1, 3)).preds == [(0, 0, 2)]

    def test_orphan_via_rolled_back_dependency(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        oracle.start_process(1)
        oracle.record_delivery(0, Entry(0, 2), None, None)
        oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 2))
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        assert oracle.is_orphan((1, 0, 2))
        assert not oracle.is_orphan((1, 0, 1))

    def test_consistency_check_flags_surviving_orphans(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        oracle.start_process(1)
        oracle.record_delivery(0, Entry(0, 2), None, None)
        oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 2))
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        violations = oracle.check_consistency()
        assert violations and "orphan" in violations[0]

    def test_consistency_clean_after_dependent_rolls_back_too(self):
        oracle = DependencyOracle(2)
        oracle.start_process(0)
        oracle.start_process(1)
        oracle.record_delivery(0, Entry(0, 2), None, None)
        oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 2))
        oracle.record_recovery(0, Entry(0, 1), Entry(1, 2))
        oracle.record_recovery(1, Entry(0, 1), Entry(1, 2))
        assert oracle.check_consistency() == []


class TestStabilityAndRevokers:
    def test_mark_stable_prefix(self):
        oracle = oracle_with_chain(deliveries=3)
        oracle.mark_stable(0, Entry(0, 3))
        assert oracle.node((0, 0, 2)).stable
        assert oracle.node((0, 0, 3)).stable
        assert not oracle.node((0, 0, 4)).stable

    def test_potential_revokers(self):
        oracle = DependencyOracle(3)
        for p in range(3):
            oracle.start_process(p)
        oracle.record_delivery(0, Entry(0, 2), None, None)
        oracle.record_delivery(1, Entry(0, 2), 0, Entry(0, 2))
        # Both P0's and P1's new intervals are volatile.
        assert oracle.potential_revokers((1, 0, 2)) == {0, 1}
        oracle.mark_stable(0, Entry(0, 2))
        assert oracle.potential_revokers((1, 0, 2)) == {1}
        oracle.mark_stable(1, Entry(0, 2))
        assert oracle.potential_revokers((1, 0, 2)) == set()

    def test_counters(self):
        oracle = oracle_with_chain(deliveries=3)
        assert oracle.total_intervals == 3 + 3  # roots + chain
        oracle.record_recovery(0, Entry(0, 2), Entry(1, 3))
        assert oracle.rolled_back_intervals == 2
