"""The bench subsystem: schema round-trip, validation, comparison, CLI."""

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    SCENARIO_FIELDS,
    BenchResult,
    BenchSchemaError,
    Comparison,
    compare_results,
    default_output_path,
    load_results,
    render_comparison,
    run_scenario,
    run_suite,
    validate_document,
    write_results,
)
from repro.perf.scenarios import SCENARIOS, scenario_by_name


def synthetic_record(events_per_s=1000.0, violations=0):
    record = {field: 0 for field in SCENARIO_FIELDS}
    record.update(
        description="synthetic", n=4, duration=100.0, seed=1,
        wall_s=1.0, events=int(events_per_s), events_per_s=events_per_s,
        deliveries=10, deliveries_per_s=10.0, released=8,
        outputs_committed=1, alloc_blocks=100, violations=violations,
    )
    return record


def synthetic_document(**scenario_eps):
    result = BenchResult(scale=1.0, created_utc="2026-01-01T00:00:00+00:00")
    for name, eps in scenario_eps.items():
        result.scenarios[name] = synthetic_record(events_per_s=eps)
    return result.as_document()


class TestScenarios:
    def test_suite_covers_required_families(self):
        names = {spec.name for spec in SCENARIOS}
        assert {"ff_n8", "ff_n32", "ff_n128", "ff_n1024", "ff_n1024_s4",
                "ff_n1024_p4", "ff_n4096", "ff_n10k", "crash_storm",
                "unreliable"} <= names
        assert {spec.n for spec in SCENARIOS
                if spec.name.startswith("ff_")} == {8, 32, 128, 1024,
                                                   4096, 10000}

    def test_scenario_by_name(self):
        assert scenario_by_name("ff_n8").n == 8
        with pytest.raises(KeyError):
            scenario_by_name("nope")

    def test_crash_storm_schedules_crashes(self):
        spec = scenario_by_name("crash_storm")
        harness, duration = spec.build(scale=0.5)
        assert duration == pytest.approx(200.0)
        assert len(harness.failures.crashes) == len(spec.crashes)

    def test_scale_has_a_floor(self):
        _harness, duration = scenario_by_name("ff_n8").build(scale=0.0001)
        assert duration == pytest.approx(40.0)


class TestRunAndRoundTrip:
    def test_scenario_record_carries_all_schema_fields(self):
        record = run_scenario(scenario_by_name("ff_n8"), scale=0.1)
        for field in SCENARIO_FIELDS:
            assert field in record
        assert record["events"] > 0
        assert record["events_per_s"] > 0
        assert record["violations"] == 0

    def test_write_load_round_trip(self, tmp_path):
        result = run_suite(scale=0.1, only=["ff_n8"])
        path = tmp_path / "BENCH_test.json"
        write_results(result, str(path))
        doc = load_results(str(path))
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["scenarios"].keys() == result.scenarios.keys()
        assert doc["scenarios"]["ff_n8"] == json.loads(
            json.dumps(result.scenarios["ff_n8"])
        )

    def test_unknown_scenario_requested(self):
        with pytest.raises(KeyError):
            run_suite(scale=0.1, only=["ff_n8", "bogus"])

    def test_default_output_path_is_dated(self):
        import datetime

        path = default_output_path(datetime.date(2026, 8, 6))
        assert path == "BENCH_2026-08-06.json"


class TestValidation:
    def test_rejects_wrong_schema_name(self):
        doc = synthetic_document(ff_n8=1000.0)
        doc["schema"] = "something-else"
        with pytest.raises(BenchSchemaError, match="not a repro-bench"):
            validate_document(doc)

    def test_rejects_newer_version(self):
        doc = synthetic_document(ff_n8=1000.0)
        doc["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="newer than supported"):
            validate_document(doc)

    def test_rejects_bad_version_type(self):
        doc = synthetic_document(ff_n8=1000.0)
        doc["schema_version"] = "1"
        with pytest.raises(BenchSchemaError, match="bad schema_version"):
            validate_document(doc)

    def test_rejects_missing_scenarios(self):
        doc = synthetic_document(ff_n8=1000.0)
        doc["scenarios"] = {}
        with pytest.raises(BenchSchemaError, match="scenarios"):
            validate_document(doc)

    def test_rejects_missing_field(self):
        doc = synthetic_document(ff_n8=1000.0)
        del doc["scenarios"]["ff_n8"]["events_per_s"]
        with pytest.raises(BenchSchemaError, match="events_per_s"):
            validate_document(doc)

    def test_load_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(BenchSchemaError):
            load_results(str(path))


class TestComparison:
    def test_flags_injected_regression(self):
        old = synthetic_document(ff_n8=1000.0, ff_n32=2000.0)
        new = synthetic_document(ff_n8=1000.0, ff_n32=1000.0)  # 2x slower
        comparisons = compare_results(old, new, tolerance=0.25)
        verdicts = {c.name: c.is_regression(0.25) for c in comparisons}
        assert verdicts == {"ff_n8": False, "ff_n32": True}

    def test_within_tolerance_is_not_a_regression(self):
        old = synthetic_document(ff_n8=1000.0)
        new = synthetic_document(ff_n8=800.0)  # -20%, tolerance 25%
        (comp,) = compare_results(old, new, tolerance=0.25)
        assert not comp.is_regression(0.25)
        assert comp.is_regression(0.10)

    def test_improvement_is_not_a_regression(self):
        old = synthetic_document(ff_n8=1000.0)
        new = synthetic_document(ff_n8=4000.0)
        (comp,) = compare_results(old, new, tolerance=0.25)
        assert comp.ratio == pytest.approx(4.0)
        assert not comp.is_regression(0.25)

    def test_disjoint_scenarios_compare_to_nothing(self):
        old = synthetic_document(ff_n8=1000.0)
        new = synthetic_document(ff_n32=1000.0)
        assert compare_results(old, new) == []

    def test_zero_old_eps_does_not_crash(self):
        comp = Comparison("x", old_eps=0.0, new_eps=10.0)
        assert comp.ratio == float("inf")
        assert not comp.is_regression(0.25)

    def test_render_mentions_regressions(self):
        old = synthetic_document(ff_n8=1000.0)
        new = synthetic_document(ff_n8=100.0)
        comparisons = compare_results(old, new, tolerance=0.25)
        text = render_comparison(comparisons, 0.25)
        assert "REGRESSION" in text


class TestCli:
    def run_cli(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_compare_exit_codes(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(synthetic_document(ff_n8=1000.0)))
        new.write_text(json.dumps(synthetic_document(ff_n8=100.0)))
        assert self.run_cli(["bench", "--compare", str(old), str(new)]) == 1
        assert self.run_cli(["bench", "--compare", str(old), str(old)]) == 0

    def test_compare_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps(synthetic_document(ff_n8=1000.0)))
        assert self.run_cli(["bench", "--compare", str(bad), str(ok)]) == 2

    def test_bench_run_writes_valid_document(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        code = self.run_cli([
            "bench", "--only", "ff_n8", "--scale", "0.1", "--out", str(out)
        ])
        assert code == 0
        doc = load_results(str(out))
        assert set(doc["scenarios"]) == {"ff_n8"}
