"""``repro bench --compare`` across differing scenario sets.

Two baselines rarely cover identical scenario sets — suites grow when new
scenarios land (e.g. ``ff_n1024``) and shrink when a run was filtered with
``--only``.  The comparator must surface both directions instead of
silently comparing the intersection: added scenarios are reported as a
note (exit 0 if nothing regressed), removed scenarios mean coverage was
lost and fail with a dedicated exit code (3), distinct from a measured
regression (1) and from unusable input (2).
"""

import json

from repro.perf.bench import scenario_set_diff

from test_bench import synthetic_document


def run_cli(argv):
    from repro.__main__ import main

    return main(argv)


class TestScenarioSetDiff:
    def test_identical_sets_diff_empty(self):
        doc = synthetic_document(ff_n8=1000.0, ff_n32=2000.0)
        assert scenario_set_diff(doc, doc) == ([], [])

    def test_added_and_removed_are_sorted(self):
        old = synthetic_document(ff_n8=1000.0, crash_storm=500.0)
        new = synthetic_document(ff_n8=1000.0, ff_n1024=100.0, ff_n32=2.0)
        added, removed = scenario_set_diff(old, new)
        assert added == ["ff_n1024", "ff_n32"]
        assert removed == ["crash_storm"]


class TestCompareCli:
    def write(self, tmp_path, name, **eps):
        path = tmp_path / name
        path.write_text(json.dumps(synthetic_document(**eps)))
        return str(path)

    def test_added_scenarios_note_but_pass(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", ff_n8=1000.0)
        new = self.write(tmp_path, "new.json", ff_n8=1000.0, ff_n1024=100.0)
        assert run_cli(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "ff_n1024" in out
        assert "note" in out

    def test_removed_scenarios_fail_with_exit_3(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", ff_n8=1000.0, crash_storm=500.0)
        new = self.write(tmp_path, "new.json", ff_n8=1000.0)
        assert run_cli(["bench", "--compare", old, new]) == 3
        err = capsys.readouterr().err
        assert "crash_storm" in err
        assert "coverage" in err

    def test_regression_beats_removed_in_exit_code(self, tmp_path):
        # A real measured regression is the more urgent signal.
        old = self.write(tmp_path, "old.json", ff_n8=1000.0, crash_storm=500.0)
        new = self.write(tmp_path, "new.json", ff_n8=100.0)
        assert run_cli(["bench", "--compare", old, new]) == 1

    def test_fully_disjoint_sets_are_an_error(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", ff_n8=1000.0)
        new = self.write(tmp_path, "new.json", ff_n32=1000.0)
        assert run_cli(["bench", "--compare", old, new]) == 2
        assert "share no scenarios" in capsys.readouterr().err

    def test_identical_sets_still_pass(self, tmp_path):
        old = self.write(tmp_path, "old.json", ff_n8=1000.0)
        assert run_cli(["bench", "--compare", old, old]) == 0
