"""The benchmark suite's pytest_configure hook.

The original hook read ``benchmark_min_rounds`` back with a getattr
default and assigned the same value again — a no-op for every possible
state of the option.  These tests pin the repaired behaviour at the hook
level and prove end-to-end that the suite runs with at least 5 rounds.
"""

import importlib.util
import json
import os
import subprocess
import sys
from types import SimpleNamespace

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
BENCHMARKS = os.path.join(REPO_ROOT, "benchmarks")


def load_hook():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", os.path.join(BENCHMARKS, "conftest.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.pytest_configure


class TestConfigureHook:
    def test_sets_min_rounds_when_absent(self):
        configure = load_hook()
        config = SimpleNamespace(option=SimpleNamespace())
        configure(config)
        assert config.option.benchmark_min_rounds == 5

    def test_sets_min_rounds_when_none(self):
        configure = load_hook()
        config = SimpleNamespace(option=SimpleNamespace(benchmark_min_rounds=None))
        configure(config)
        assert config.option.benchmark_min_rounds == 5

    def test_leaves_explicit_value_alone(self):
        configure = load_hook()
        config = SimpleNamespace(option=SimpleNamespace(benchmark_min_rounds=17))
        configure(config)
        assert config.option.benchmark_min_rounds == 17


@pytest.mark.slow
def test_benchmark_suite_runs_with_at_least_five_rounds(tmp_path):
    if importlib.util.find_spec("pytest_benchmark") is None:
        pytest.skip("pytest-benchmark not installed")
    out = tmp_path / "bench.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest",
         os.path.join(BENCHMARKS, "bench_micro.py"),
         "-q", "-k", "test_copy", f"--benchmark-json={out}"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(out.read_text())
    assert doc["benchmarks"], "no benchmarks ran"
    for bench in doc["benchmarks"]:
        assert bench["stats"]["rounds"] >= 5
