"""The optimized DependencyVector against a reference implementation.

``merge`` grew pre-scan/skip-empty fast paths and ``copy`` became
copy-on-write; these tests pin both to the obvious dict-of-lex-max
semantics so future "optimizations" cannot drift."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry, lex_max

N = 6

entries = st.builds(Entry, inc=st.integers(0, 3), sii=st.integers(1, 25))
entry_maps = st.dictionaries(st.integers(0, N - 1), entries, max_size=N)


def reference_merge(a: dict, b: dict) -> dict:
    merged = {}
    for pid in range(N):
        entry = lex_max(a.get(pid), b.get(pid))
        if entry is not None:
            merged[pid] = entry
    return merged


class TestMergeMatchesReference:
    @given(entry_maps, entry_maps)
    def test_merge_equals_reference(self, a, b):
        vec = DependencyVector(N, a)
        vec.merge(DependencyVector(N, b))
        assert vec.as_dict() == reference_merge(a, b)

    @given(entry_maps, entry_maps)
    def test_merge_into_cow_alias_equals_reference(self, a, b):
        # Exercise the materialize-on-write path: merge into a shared copy.
        original = DependencyVector(N, a)
        vec = original.copy()
        vec.merge(DependencyVector(N, b))
        assert vec.as_dict() == reference_merge(a, b)
        assert original.as_dict() == a

    @given(entry_maps, entry_maps)
    def test_version_bumps_iff_content_changes(self, a, b):
        vec = DependencyVector(N, a)
        before = (vec.version, vec.as_dict())
        vec.merge(DependencyVector(N, b))
        if vec.as_dict() == before[1]:
            assert vec.version == before[0]
        else:
            assert vec.version > before[0]

    @given(entry_maps)
    def test_merge_empty_is_noop(self, a):
        vec = DependencyVector(N, a)
        version = vec.version
        vec.merge(DependencyVector(N))
        assert vec.as_dict() == a
        assert vec.version == version


class TestCopyOnWrite:
    @given(entry_maps)
    def test_copy_is_equal_and_independent(self, a):
        vec = DependencyVector(N, a)
        dup = vec.copy()
        assert dup == vec
        dup.set(0, Entry(9, 99))
        assert vec.as_dict() == a

    @given(entry_maps)
    def test_mutating_original_leaves_copy_intact(self, a):
        vec = DependencyVector(N, a)
        dup = vec.copy()
        vec.set(1, Entry(9, 99))
        vec.nullify(0)
        assert dup.as_dict() == a

    def test_nullify_under_sharing(self):
        # The send-buffer pattern: a piggybacked snapshot is nullified in
        # place while the live vector keeps its entry.
        vec = DependencyVector(4, {1: Entry(0, 5), 2: Entry(1, 3)})
        snapshot = vec.copy()
        snapshot.nullify(1)
        assert snapshot.get(1) is None
        assert vec.get(1) == Entry(0, 5)

    def test_chained_copies(self):
        a = DependencyVector(4, {0: Entry(0, 1)})
        b = a.copy()
        c = b.copy()
        b.set(1, Entry(0, 2))
        assert a.as_dict() == {0: Entry(0, 1)}
        assert c.as_dict() == {0: Entry(0, 1)}
        assert b.as_dict() == {0: Entry(0, 1), 1: Entry(0, 2)}

    def test_iter_items_matches_items(self):
        vec = DependencyVector(5, {3: Entry(0, 7), 1: Entry(2, 2)})
        assert sorted(vec.iter_items()) == list(vec.items())
