"""Unit tests for the PWD application model."""

import pytest

from repro.app.behavior import AppBehavior, AppContext, EchoBehavior


class TestAppContext:
    def test_send_collects(self):
        ctx = AppContext(0, 4, 0, 2, seed=0)
        ctx.send(1, {"a": 1})
        ctx.send(2, {"b": 2})
        assert ctx.sends == [(1, {"a": 1}), (2, {"b": 2})]

    def test_output_collects(self):
        ctx = AppContext(0, 4, 0, 2, seed=0)
        ctx.output("x")
        assert ctx.outputs == ["x"]

    def test_self_send_rejected(self):
        ctx = AppContext(0, 4, 0, 2, seed=0)
        with pytest.raises(ValueError):
            ctx.send(0, {})

    def test_out_of_range_destination_rejected(self):
        ctx = AppContext(0, 4, 0, 2, seed=0)
        with pytest.raises(ValueError):
            ctx.send(4, {})

    def test_rng_deterministic_per_interval(self):
        # The core PWD requirement: a replayed interval draws identical
        # random numbers.
        a = AppContext(0, 4, 1, 7, seed=42)
        b = AppContext(0, 4, 1, 7, seed=42)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_rng_differs_across_intervals(self):
        a = AppContext(0, 4, 1, 7, seed=42)
        b = AppContext(0, 4, 1, 8, seed=42)
        assert a.rng.random() != b.rng.random()

    def test_rng_differs_across_incarnations(self):
        # Re-execution in a new incarnation is a *different* nondeterministic
        # choice, not a replay.
        a = AppContext(0, 4, 1, 7, seed=42)
        b = AppContext(0, 4, 2, 7, seed=42)
        assert a.rng.random() != b.rng.random()

    def test_sends_returns_copy(self):
        ctx = AppContext(0, 4, 0, 2, seed=0)
        ctx.send(1, {})
        ctx.sends.clear()
        assert len(ctx.sends) == 1


class TestEchoBehavior:
    def test_counts_and_logs(self):
        behavior = EchoBehavior()
        state = behavior.initial_state(0, 4)
        ctx = AppContext(0, 4, 0, 2, seed=0)
        state = behavior.on_message(state, {"x": 1}, ctx)
        assert state["delivered"] == 1
        assert state["log"] == [{"x": 1}]

    def test_forwarding(self):
        behavior = EchoBehavior()
        ctx = AppContext(0, 4, 0, 2, seed=0)
        behavior.on_message(behavior.initial_state(0, 4),
                            {"forward_to": 2, "payload": "p"}, ctx)
        assert ctx.sends == [(2, "p")]

    def test_output(self):
        behavior = EchoBehavior()
        ctx = AppContext(0, 4, 0, 2, seed=0)
        behavior.on_message(behavior.initial_state(0, 4), {"output": "o"}, ctx)
        assert ctx.outputs == ["o"]

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            AppBehavior().on_message({}, {}, AppContext(0, 2, 0, 1, seed=0))
