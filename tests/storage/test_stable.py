"""Unit tests for the stable-storage model."""

import pytest

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.storage.stable import LoggedMessage, StableStorage
from repro.types import MessageId


def record(position, inc=0, src=1):
    msg = AppMessage(
        msg_id=MessageId(src, inc, position, 0),
        src=src, dst=0, payload={"p": position},
        tdv=DependencyVector(4),
        send_interval=Entry(inc, position),
    )
    return LoggedMessage(position, inc, msg)


class TestCheckpoints:
    def test_write_and_read_latest(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 3), {"a": 1}, DependencyVector(4), set())
        assert storage.latest_checkpoint().entry == Entry(0, 3)
        assert storage.checkpoints_taken == 1
        assert storage.sync_writes == 1

    def test_checkpoint_state_is_deep_copied(self):
        storage = StableStorage(0)
        state = {"nested": [1, 2]}
        storage.write_checkpoint(Entry(0, 3), state, DependencyVector(4), set())
        state["nested"].append(3)
        assert storage.latest_checkpoint().app_state == {"nested": [1, 2]}

    def test_checkpoint_vector_snapshot(self):
        storage = StableStorage(0)
        tdv = DependencyVector(4, {1: Entry(0, 5)})
        storage.write_checkpoint(Entry(0, 3), {}, tdv, set())
        tdv.set(2, Entry(0, 9))
        assert storage.latest_checkpoint().tdv.get(2) is None

    def test_no_checkpoint_is_an_error(self):
        with pytest.raises(RuntimeError):
            StableStorage(0).latest_checkpoint()

    def test_discard_checkpoints_after(self):
        storage = StableStorage(0)
        for sii in (1, 3, 5):
            storage.write_checkpoint(Entry(0, sii), {}, DependencyVector(4), set())
        storage.discard_checkpoints_after(0)
        assert len(storage.checkpoints) == 1
        assert storage.latest_checkpoint().entry == Entry(0, 1)


class TestMessageLog:
    def test_append_sync_vs_async_accounting(self):
        storage = StableStorage(0)
        storage.append_log([record(2), record(3)], sync=False)
        storage.append_log([record(4)], sync=True)
        assert storage.async_writes == 1
        assert storage.sync_writes == 1
        assert storage.messages_logged == 3

    def test_empty_append_is_free(self):
        storage = StableStorage(0)
        storage.append_log([], sync=True)
        assert storage.sync_writes == 0

    def test_logged_after_orders_by_position(self):
        storage = StableStorage(0)
        storage.append_log([record(4), record(2), record(7)], sync=False)
        positions = [r.position for r in storage.logged_after(2)]
        assert positions == [4, 7]

    def test_pop_logged_after_removes(self):
        storage = StableStorage(0)
        storage.append_log([record(2), record(3), record(4)], sync=False)
        popped = storage.pop_logged_after(2)
        assert [r.position for r in popped] == [3, 4]
        assert storage.log_size == 1

    def test_highest_logged_position(self):
        storage = StableStorage(0)
        assert storage.highest_logged_position() == 0
        storage.append_log([record(5)], sync=False)
        assert storage.highest_logged_position() == 5


class TestAnnouncements:
    def test_announcements_are_synchronous(self):
        storage = StableStorage(0)
        ann = FailureAnnouncement(1, Entry(0, 4))
        storage.log_announcement(ann)
        assert storage.sync_writes == 1
        assert storage.announcements == (ann,)


class TestIncarnationMarkers:
    def test_marker_from_explicit_log(self):
        storage = StableStorage(0)
        storage.log_incarnation_start(3)
        assert storage.highest_incarnation_marker() == 3
        assert storage.sync_writes == 1

    def test_lower_marker_is_free_noop(self):
        storage = StableStorage(0)
        storage.log_incarnation_start(3)
        storage.log_incarnation_start(2)
        assert storage.sync_writes == 1

    def test_marker_from_checkpoints_and_log(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(2, 9), {}, DependencyVector(4), set())
        storage.append_log([record(10, inc=3)], sync=False)
        assert storage.highest_incarnation_marker() == 3

    def test_marker_from_own_announcement(self):
        # Announcing the end of incarnation t implies t+1 started.
        storage = StableStorage(0)
        storage.log_announcement(FailureAnnouncement(0, Entry(1, 4)))
        assert storage.highest_incarnation_marker() == 2

    def test_foreign_announcements_ignored(self):
        storage = StableStorage(0)
        storage.log_announcement(FailureAnnouncement(1, Entry(5, 4)))
        assert storage.highest_incarnation_marker() == 0


class TestCommittedOutputs:
    def test_record_and_query(self):
        storage = StableStorage(0)
        assert not storage.output_committed("o1")
        storage.record_committed_output("o1")
        assert storage.output_committed("o1")
        assert storage.committed_output_count == 1
        assert storage.sync_writes == 1


class TestDefensiveCopies:
    """Regression: recovery used to resume execution *inside* the stored
    checkpoint object, corrupting the recovery point for the next crash."""

    def test_latest_checkpoint_returns_an_isolated_copy(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 3), {"n": [1]}, DependencyVector(4),
                                 {record(1).message.msg_id})
        restored = storage.latest_checkpoint()
        restored.app_state["n"].append(2)
        restored.tdv.set(2, Entry(0, 9))
        pristine = storage.latest_checkpoint()
        assert pristine.app_state == {"n": [1]}
        assert pristine.tdv.get(2) is None
        # received_ids is handed out as a frozenset: immutable by type.
        assert isinstance(pristine.received_ids, frozenset)

    def test_restore_checkpoint_returns_an_isolated_copy(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 3), {"x": 1}, DependencyVector(4),
                                 set())
        storage.write_checkpoint(Entry(0, 7), {"x": 2}, DependencyVector(4),
                                 set())
        restored = storage.restore_checkpoint(0)
        assert restored.entry == Entry(0, 3)
        restored.app_state["x"] = 99
        assert storage.restore_checkpoint(0).app_state == {"x": 1}

    def test_restore_checkpoint_bounds_checked(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 3), {}, DependencyVector(4), set())
        with pytest.raises(IndexError):
            storage.restore_checkpoint(1)
        with pytest.raises(IndexError):
            storage.restore_checkpoint(-1)


class TestMarkerCache:
    """The incarnation marker is cached and invalidated on writes; the
    cached answer must always equal a from-scratch scan."""

    def _assert_cache_consistent(self, storage):
        cached = storage.highest_incarnation_marker()
        storage._marker_cache = None  # force a rescan
        assert storage.highest_incarnation_marker() == cached

    def test_cache_follows_every_mutation(self):
        storage = StableStorage(0)
        self._assert_cache_consistent(storage)
        storage.write_checkpoint(Entry(2, 9), {}, DependencyVector(4), set())
        self._assert_cache_consistent(storage)
        storage.append_log([record(10, inc=3)], sync=False)
        self._assert_cache_consistent(storage)
        storage.log_announcement(FailureAnnouncement(0, Entry(4, 2)))
        self._assert_cache_consistent(storage)
        storage.log_incarnation_start(6)
        self._assert_cache_consistent(storage)

    def test_cache_invalidated_by_truncation(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 1), {}, DependencyVector(4), set())
        storage.append_log([record(5, inc=7)], sync=False)
        assert storage.highest_incarnation_marker() == 7
        storage.pop_logged_after(0)  # drops the inc-7 record
        assert storage.highest_incarnation_marker() == 0
        self._assert_cache_consistent(storage)

    def test_cache_invalidated_by_checkpoint_discard(self):
        storage = StableStorage(0)
        storage.write_checkpoint(Entry(0, 1), {}, DependencyVector(4), set())
        storage.write_checkpoint(Entry(5, 9), {}, DependencyVector(4), set())
        assert storage.highest_incarnation_marker() == 5
        storage.discard_checkpoints_after(0)
        assert storage.highest_incarnation_marker() == 0
        self._assert_cache_consistent(storage)

    def test_repeated_queries_do_not_rescan(self):
        storage = StableStorage(0)
        storage.log_incarnation_start(3)
        assert storage.highest_incarnation_marker() == 3
        calls = []
        original = storage._scan_incarnation_marker
        storage._scan_incarnation_marker = lambda: calls.append(1) or original()
        assert storage.highest_incarnation_marker() == 3
        assert storage.highest_incarnation_marker() == 3
        assert calls == []
