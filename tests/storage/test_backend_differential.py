"""Differential property test: FileLogBackend vs ModelBackend.

The file-log backend subclasses the model, so its *logical* answers must
match the model's exactly — and, with a strict fsync policy (every record
durable before the call returns), a crash + REDO recovery must rebuild
the identical logical state.  Hypothesis drives both backends through the
same random operation sequences and compares ``state_digest()`` before
and after a crash/recover cycle.
"""

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.storage.filelog import FileLogBackend
from repro.storage.stable import LoggedMessage, ModelBackend
from repro.types import MessageId

N = 4


def _record(position, inc, payload):
    msg = AppMessage(
        msg_id=MessageId(1, inc, position, 0),
        src=1, dst=0, payload=payload,
        tdv=DependencyVector(N, {2: Entry(0, position)}),
        send_interval=Entry(inc, position),
    )
    return LoggedMessage(position, inc, msg)


op = st.one_of(
    st.tuples(st.just("checkpoint"), st.integers(0, 50),
              st.dictionaries(st.text(max_size=3), st.integers(),
                              max_size=3)),
    st.tuples(st.just("append"), st.integers(1, 50), st.booleans()),
    st.tuples(st.just("announce"), st.integers(0, 3), st.integers(0, 50)),
    st.tuples(st.just("incmark"), st.integers(1, 5)),
    st.tuples(st.just("commit"), st.integers(0, 30)),
    st.tuples(st.just("pop"), st.integers(0, 50)),
    st.tuples(st.just("discard_ckpt"), st.integers(0, 5)),
    st.tuples(st.just("gc"), st.integers(0, 5)),
)


def _apply(backend, operation, records):
    kind = operation[0]
    if kind == "checkpoint":
        _, sii, state = operation
        backend.write_checkpoint(
            Entry(0, sii), state,
            DependencyVector(N, {1: Entry(0, sii)}),
            {MessageId(1, 0, sii, 0)},
            time_taken=0.5,
        )
    elif kind == "append":
        # Both backends must log the *same* message object: AppMessage
        # construction assigns a fresh wire_id, which the digest compares.
        _, key, sync = operation
        backend.append_log([records[key]], sync=sync)
    elif kind == "announce":
        _, pid, sii = operation
        backend.log_announcement(FailureAnnouncement(pid, Entry(0, sii)))
    elif kind == "incmark":
        backend.log_incarnation_start(operation[1])
    elif kind == "commit":
        backend.record_committed_output(("out", operation[1]))
    elif kind == "pop":
        backend.pop_logged_after(operation[1])
    elif kind == "discard_ckpt":
        index = operation[1] % len(backend.checkpoints)
        backend.discard_checkpoints_after(index)
    elif kind == "gc":
        index = operation[1] % len(backend.checkpoints)
        backend.truncate_before(index)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op, max_size=25), seed=st.integers(0, 1 << 16))
def test_filelog_matches_model_through_crash(ops, seed):
    directory = tempfile.mkdtemp(prefix="repro-difftest-")
    try:
        model = ModelBackend(0)
        filelog = FileLogBackend(0, directory, seed=seed,
                                 fsync_policy="strict", segment_bytes=2048)
        # Both start from the runtime's initial checkpoint.  Records are
        # materialized once per distinct position and shared.
        boot = ("checkpoint", 0, {})
        records, position = {}, 0
        for operation in ops:
            if operation[0] == "append":
                position += operation[1]
                records[operation[1]] = _record(position, 0,
                                                {"v": operation[1]})
        records["tail"] = _record(position + 1, 0, {"v": "tail"})
        for operation in [boot, *ops]:
            _apply(model, operation, records)
            _apply(filelog, operation, records)
        assert filelog.state_digest() == model.state_digest()

        # Strict policy: every record was durable, so a crash + REDO
        # recovery rebuilds the identical logical state.
        filelog.crash()
        filelog.recover()
        assert filelog.state_digest() == model.state_digest()

        # And the recovered backend is still live and consistent.
        tail = ("append", "tail", True)
        _apply(model, tail, records)
        _apply(filelog, tail, records)
        assert filelog.state_digest() == model.state_digest()
        filelog.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
