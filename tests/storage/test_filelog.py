"""Unit tests for the durable file-log backend.

Every test gets its own ``tmp_path`` journal directory, so segment files
never leak between tests (pytest removes the directory afterwards).
"""

import os

import pytest

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage, FailureAnnouncement
from repro.storage.filelog import COMPACT_SEGMENT_THRESHOLD, FileLogBackend
from repro.storage.recovery import list_segments
from repro.storage.stable import LoggedMessage, ModelBackend
from repro.storage.faults import StorageDeadError
from repro.types import MessageId


def record(position, inc=0, src=1, pad=0):
    msg = AppMessage(
        msg_id=MessageId(src, inc, position, 0),
        src=src, dst=0, payload={"p": position, "pad": "x" * pad},
        tdv=DependencyVector(4),
        send_interval=Entry(inc, position),
    )
    return LoggedMessage(position, inc, msg)


def make_backend(tmp_path, **kwargs):
    kwargs.setdefault("group_commit_records", 4)
    return FileLogBackend(0, str(tmp_path / "p0"), **kwargs)


def checkpointed(backend, sii=0):
    backend.write_checkpoint(Entry(0, sii), {"s": sii}, DependencyVector(4),
                             set())


class TestGroupCommit:
    def test_async_batch_shares_one_fsync(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.append_log([record(i) for i in range(1, 4)], sync=False)
        # Three frames, one tolerant group commit for the whole batch.
        assert backend.fsyncs == 1
        assert backend.group_commits == 1
        assert backend.bytes_fsynced == backend.bytes_written

    def test_record_threshold_commits_mid_batch(self, tmp_path):
        backend = make_backend(tmp_path, group_commit_records=2)
        backend.append_log([record(i) for i in range(1, 6)], sync=False)
        # ceil(5/2) threshold commits minus overlap with the batch-final
        # commit: at least two fsyncs, strictly fewer than one per record.
        assert 2 <= backend.fsyncs < 5

    def test_strict_policy_fsyncs_every_record(self, tmp_path):
        backend = make_backend(tmp_path, fsync_policy="strict")
        backend.append_log([record(1), record(2)], sync=False)
        assert backend.fsyncs == 2

    def test_sync_append_commits_immediately(self, tmp_path):
        backend = make_backend(tmp_path, group_commit_records=100)
        backend.append_log([record(1)], sync=True)
        assert backend.fsyncs == 1
        assert backend.bytes_fsynced == backend.bytes_written


class TestCrashRecovery:
    def test_clean_crash_preserves_committed_state(self, tmp_path):
        backend = make_backend(tmp_path)
        checkpointed(backend)
        backend.append_log([record(1), record(2)], sync=False)
        backend.record_committed_output("out-1")
        backend.crash()
        backend.recover()
        assert backend.log_size == 2
        assert backend.output_committed("out-1")
        assert backend.latest_checkpoint_entry() == Entry(0, 0)
        assert backend.recoveries == 1
        assert backend.torn_records_dropped == 0

    def test_operations_refused_between_crash_and_recover(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.crash()
        with pytest.raises(StorageDeadError):
            backend.append_log([record(1)], sync=True)
        backend.recover()
        backend.append_log([record(1)], sync=True)
        assert backend.log_size == 1

    def test_recovery_requires_no_undo(self, tmp_path):
        # REDO-only: whatever prefix survives is a consistent earlier
        # state; scanning must never need to un-apply anything.  Pop and
        # discard ops are journaled too, so the fold replays them forward.
        backend = make_backend(tmp_path)
        checkpointed(backend, sii=0)
        backend.append_log([record(i) for i in range(1, 5)], sync=True)
        backend.pop_logged_after(2)
        checkpointed(backend, sii=2)
        backend.discard_checkpoints_after(0)
        backend.crash()
        backend.recover()
        assert backend.log_size == 2
        assert len(backend.checkpoints) == 1


class TestTornWrite:
    def test_torn_tail_truncated_at_first_bad_frame(self, tmp_path):
        backend = make_backend(tmp_path, group_commit_records=100)
        checkpointed(backend)
        before = backend.fsyncs
        # An armed tear suppresses tolerant commits: the batch the crash
        # will interrupt stays in flight, un-fsynced.
        backend.arm_fault(type("E", (), {
            "kind": "torn_write", "count": 1, "duration": 0.0})())
        # Varying record sizes guarantee the half-tail cut lands inside a
        # frame, not exactly on a boundary.
        backend.append_log([record(i, pad=i * 37) for i in range(1, 7)],
                           sync=False)
        assert backend.fsyncs == before
        backend.crash()
        backend.recover()
        # Roughly half the tail survived, cut mid-record: the partial
        # final frame is detected and dropped, whole frames replay.
        assert backend.torn_records_dropped >= 1
        assert backend.log_size < 6
        assert ("torn_write", "kept") in [
            (kind, detail.split()[0]) for kind, detail in
            backend.injector.fired
        ]

    def test_recovered_prefix_is_usable(self, tmp_path):
        backend = make_backend(tmp_path, group_commit_records=100)
        checkpointed(backend)
        backend.arm_fault(type("E", (), {
            "kind": "torn_write", "count": 1, "duration": 0.0})())
        backend.append_log([record(i) for i in range(1, 7)], sync=False)
        backend.crash()
        backend.recover()
        survivors = backend.logged_after(0)
        # Prefix consistency: surviving records are a contiguous prefix.
        assert [r.position for r in survivors] == list(
            range(1, len(survivors) + 1))
        backend.append_log([record(len(survivors) + 1)], sync=True)
        assert backend.log_size == len(survivors) + 1


class TestFsyncLie:
    def test_lie_splits_belief_from_truth(self, tmp_path):
        backend = make_backend(tmp_path)
        checkpointed(backend)
        backend.injector.arm("fsync_lie")
        backend.append_log([record(1)], sync=True)
        assert backend.fsync_lies == 1
        # The process believes the record durable; the device knows better.
        assert backend._believed == backend._written
        assert backend._persisted < backend._written
        backend.crash()
        backend.recover()
        assert backend.log_size == 0  # the lied-about record is gone

    def test_honest_fsync_covers_earlier_lie(self, tmp_path):
        backend = make_backend(tmp_path)
        checkpointed(backend)
        backend.injector.arm("fsync_lie")
        backend.append_log([record(1)], sync=True)   # lied
        backend.append_log([record(2)], sync=True)   # honest: covers both
        assert backend._persisted == backend._written
        backend.crash()
        backend.recover()
        assert backend.log_size == 2


class TestTransientErrors:
    def test_eio_retried_with_recorded_backoff(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.injector.arm("eio", count=2)
        backend.append_log([record(1)], sync=True)
        assert backend.io_errors == 2
        assert backend.io_retries >= 2
        assert backend.backoff_time > 0.0
        assert backend.log_size == 1

    def test_exhausted_retries_declare_dead(self, tmp_path):
        backend = make_backend(tmp_path, io_retries=2)
        backend.injector.arm("eio", count=50)
        with pytest.raises(StorageDeadError):
            backend.append_log([record(1)], sync=True)
        assert backend.dead_declared == 1
        with pytest.raises(StorageDeadError):
            backend.record_committed_output("x")
        backend.injector._armed.clear()
        backend.recover()
        backend.append_log([record(1)], sync=True)

    def test_stall_recorded_not_slept(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.injector.arm("stall", duration=7.5)
        backend.append_log([record(1)], sync=True)
        assert backend.stall_time == pytest.approx(7.5)

    def test_crash_after_fsyncs_fires_on_boundary(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.injector.arm("crash_after_fsyncs", count=2)
        backend.append_log([record(1)], sync=True)
        with pytest.raises(StorageDeadError):
            backend.append_log([record(2)], sync=True)
        # The fsync completed before the device died: both records are
        # durable and recovery sees them.
        backend.recover()
        assert backend.log_size == 2


class TestBitFlip:
    def test_flip_detected_by_crc_and_truncated(self, tmp_path):
        backend = make_backend(tmp_path, fsync_policy="strict")
        checkpointed(backend)
        for i in range(1, 9):
            backend.append_log([record(i)], sync=True)
        backend.arm_fault(type("E", (), {
            "kind": "bit_flip", "count": 1, "duration": 0.0})())
        backend.crash()
        backend.recover()
        assert backend.corrupt_records_dropped >= 1
        # Whatever survived is still a consistent prefix.
        survivors = backend.logged_after(0)
        assert [r.position for r in survivors] == list(
            range(1, len(survivors) + 1))


class TestSegments:
    def test_rotation_seals_segments(self, tmp_path):
        backend = make_backend(tmp_path, segment_bytes=512)
        for i in range(1, 30):
            backend.append_log([record(i)], sync=True)
        segments = list_segments(backend.directory)
        assert len(segments) > 1
        backend.crash()
        backend.recover()
        assert backend.log_size == 29

    def test_compaction_snapshots_and_unlinks(self, tmp_path):
        backend = make_backend(tmp_path, segment_bytes=512)
        checkpointed(backend, sii=0)
        for i in range(1, 30):
            backend.append_log([record(i)], sync=True)
        checkpointed(backend, sii=29)
        assert len(list_segments(backend.directory)) >= (
            COMPACT_SEGMENT_THRESHOLD)
        backend.pop_logged_after(29)
        reclaimed = backend.truncate_before(1)
        assert reclaimed >= 0
        segments = list_segments(backend.directory)
        assert len(segments) <= 2  # snapshot segment + active tail
        backend.crash()
        backend.recover()
        assert backend.latest_checkpoint_entry() == Entry(0, 29)
        assert backend.output_committed("nope") is False

    def test_close_releases_the_tail_handle(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.append_log([record(1)], sync=True)
        backend.close()
        assert backend._handle is None


class TestFrontier:
    def test_frontier_tracks_current_when_all_durable(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.append_log([record(1)], sync=True)
        assert backend.stable_frontier(Entry(0, 1)) == Entry(0, 1)

    def test_frontier_lags_while_batch_pending(self, tmp_path):
        backend = make_backend(tmp_path, group_commit_records=100)
        backend.append_log([record(1)], sync=True)
        assert backend.stable_frontier(Entry(0, 1)) == Entry(0, 1)
        # Suppress the per-batch tolerant commit to leave records pending.
        backend.injector.arm("torn_write")
        backend.append_log([record(2), record(3)], sync=False)
        assert backend._pending_records > 0
        # The frontier stays frozen at the durable tip, never advances to
        # the un-fsynced records, and never exceeds current.
        assert backend.stable_frontier(Entry(0, 3)) == Entry(0, 1)
        assert backend.stable_frontier(Entry(0, 0)) == Entry(0, 0)


class TestModelBackendFaults:
    def test_model_counts_and_ignores_storage_faults(self):
        backend = ModelBackend(0)
        backend.arm_fault(type("E", (), {
            "kind": "fsync_lie", "count": 1, "duration": 0.0})())
        assert backend.faults_ignored == 1
        backend.crash()
        backend.recover()
        assert backend.recoveries == 0  # nothing to do: model is stable
