"""Unit tests for the volatile message buffer."""

import pytest

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import AppMessage
from repro.storage.stable import LoggedMessage
from repro.storage.volatile import VolatileBuffer
from repro.types import MessageId


def record(position, inc=0):
    msg = AppMessage(
        msg_id=MessageId(1, inc, position, 0),
        src=1, dst=0, payload={},
        tdv=DependencyVector(2),
        send_interval=Entry(inc, position),
    )
    return LoggedMessage(position, inc, msg)


class TestVolatileBuffer:
    def test_append_and_len(self):
        buf = VolatileBuffer()
        buf.append(record(2))
        buf.append(record(3))
        assert len(buf) == 2
        assert bool(buf)

    def test_positions_must_increase(self):
        buf = VolatileBuffer()
        buf.append(record(3))
        with pytest.raises(ValueError):
            buf.append(record(3))
        with pytest.raises(ValueError):
            buf.append(record(2))

    def test_drain_empties(self):
        buf = VolatileBuffer()
        buf.append(record(2))
        drained = buf.drain()
        assert [r.position for r in drained] == [2]
        assert len(buf) == 0
        assert not buf

    def test_clear_models_crash(self):
        buf = VolatileBuffer()
        buf.append(record(2))
        buf.clear()
        assert buf.drain() == []

    def test_discard_after(self):
        buf = VolatileBuffer()
        for p in (2, 3, 4, 5):
            buf.append(record(p))
        dropped = buf.discard_after(3)
        assert [r.position for r in dropped] == [4, 5]
        assert [r.position for r in buf.records] == [2, 3]

    def test_records_returns_copy(self):
        buf = VolatileBuffer()
        buf.append(record(2))
        records = buf.records
        records.clear()
        assert len(buf) == 1
