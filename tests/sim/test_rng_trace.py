"""Unit tests for seeded RNG streams and the tracer."""

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, Tracer


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_deterministic_across_registries(self):
        a = RngRegistry(7).stream("net").random()
        b = RngRegistry(7).stream("net").random()
        assert a == b

    def test_different_names_are_independent(self):
        rngs = RngRegistry(7)
        seq_a = [rngs.stream("a").random() for _ in range(3)]
        rngs2 = RngRegistry(7)
        rngs2.stream("b").random()  # consuming b must not perturb a
        seq_a2 = [rngs2.stream("a").random() for _ in range(3)]
        assert seq_a == seq_a2

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_fresh_streams_not_cached(self):
        rngs = RngRegistry(3)
        f1 = rngs.fresh("x")
        f2 = rngs.fresh("x")
        assert f1 is not f2
        assert f1.random() == f2.random()


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.record(1.0, "msg.send", 0, msg="m1")
        tracer.record(2.0, "msg.deliver", 1, msg="m1")
        assert len(tracer.events) == 2
        assert tracer.events[0].data["msg"] == "m1"

    def test_disabled_tracer_is_silent(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "msg.send", 0)
        assert tracer.events == []

    def test_select_by_category_prefix(self):
        tracer = Tracer()
        tracer.record(1.0, "msg.send", 0)
        tracer.record(2.0, "msg.deliver", 0)
        tracer.record(3.0, "recovery.rollback", 1)
        assert len(tracer.select(category="msg")) == 2
        assert len(tracer.select(category="recovery.rollback")) == 1

    def test_select_by_process(self):
        tracer = Tracer()
        tracer.record(1.0, "a", 0)
        tracer.record(2.0, "a", 1)
        assert len(tracer.select(process=1)) == 1

    def test_count(self):
        tracer = Tracer()
        tracer.record(1.0, "a", 0)
        tracer.record(2.0, "a", 1)
        assert tracer.count("a") == 2
        assert tracer.count("a", process=0) == 1

    def test_subscribers_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.record(1.0, "x", None)
        assert len(seen) == 1
        assert isinstance(seen[0], TraceEvent)

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "x", None)
        tracer.clear()
        assert tracer.events == []

    def test_format_renders_lines(self):
        tracer = Tracer()
        tracer.record(1.0, "msg.send", 0, msg="m1")
        text = tracer.format()
        assert "msg.send" in text
        assert "P0" in text
