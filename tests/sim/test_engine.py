"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError, call_soon


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        fired = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_priority_overrides_insertion_order(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("late"), priority=5)
        engine.schedule(1.0, lambda: fired.append("early"), priority=0)
        engine.run()
        assert fired == ["early", "late"]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(4.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_schedule_at_absolute_time(self):
        engine = Engine(start_time=10.0)
        seen = []
        engine.schedule_at(12.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.0]

    def test_cannot_schedule_in_the_past(self):
        engine = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(1.0, lambda: fired.append("nested"))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == ["first", "nested"]
        assert engine.now == 2.0


class TestRunControl:
    def test_run_until_leaves_later_events_queued(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending == 1
        engine.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_with_empty_queue(self):
        engine = Engine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_run_until_advances_clock_with_all_cancelled_queue(self):
        # Regression: a queue holding only cancelled records at entry used
        # to leave the clock untouched (the break skipped the while/else
        # that advances it), so it behaved differently from an empty queue.
        engine = Engine()
        for _ in range(3):
            engine.schedule(2.0, lambda: None).cancel()
        engine.run(until=7.0)
        assert engine.now == 7.0
        assert engine.pending == 0

    def test_run_until_advances_clock_when_cancelled_past_horizon(self):
        # Same shape with the cancelled records beyond the horizon: peek
        # pops them lazily and run() must still reach ``until``.
        engine = Engine()
        engine.schedule(20.0, lambda: None).cancel()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events_guards_livelock(self):
        engine = Engine()

        def loop():
            engine.schedule(0.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_executed == 3

    def test_engine_not_reentrant(self):
        engine = Engine()
        errors = []

        def reenter():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(exc)

        engine.schedule(1.0, reenter)
        engine.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        handle.cancel()  # must not raise

    def test_cancelled_events_skipped_in_peek(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        engine.schedule(2.0, lambda: fired.append("y"))
        handle.cancel()
        engine.run(until=10.0)
        assert fired == ["y"]


class TestPendingCounter:
    def test_pending_excludes_cancelled_events(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(3)]
        assert engine.pending == 3
        handles[1].cancel()
        assert engine.pending == 2
        handles[1].cancel()  # double-cancel must not double-count
        assert engine.pending == 2

    def test_pending_decrements_on_fire(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0

    def test_pending_zero_after_cancelling_everything(self):
        engine = Engine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(5)]
        for handle in handles:
            handle.cancel()
        assert engine.pending == 0
        engine.run()
        assert engine.events_executed == 0


class TestHeapCompaction:
    def test_compaction_drops_cancelled_records(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # The dead fraction repeatedly crossed one half, so at least one
        # rebuild dropped cancelled records; afterwards dead records can
        # never outnumber live ones by more than the rebuild threshold.
        assert engine.pending == 50
        assert len(engine._queue) < 200
        dead = len(engine._queue) - engine.pending
        assert dead < max(Engine.COMPACT_MIN_DEAD, engine.pending + 1)

    def test_firing_order_survives_compaction(self):
        engine = Engine()
        fired = []
        keep = []
        for i in range(200):
            if i % 4 == 0:
                keep.append(i)
                engine.schedule(float(i + 1), lambda i=i: fired.append(i))
            else:
                engine.schedule(float(i + 1), lambda: None).cancel()
        engine.run()
        assert fired == keep

    def test_small_queues_are_left_alone(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the minimum dead threshold: lazy deletion only.
        assert len(engine._queue) == 10
        assert engine.pending == 0


class TestCallSoon:
    def test_call_soon_runs_at_current_time(self):
        engine = Engine(start_time=3.0)
        seen = []
        call_soon(engine, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]
