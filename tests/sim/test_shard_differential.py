"""Scenario-level differential harness: W shards vs the single-heap run.

The sharded engine promises the exact same simulation — not a similar
one — for any worker count W, because the cross-shard merge pops records
in global ``(time, priority, seq)`` order.  These tests run the real
bench scenarios (failure-free, lossy network, durable recovery, crash
storm) end to end at W in {1, 2, 4} with the same seed and assert the
observable outcomes are identical:

- the committed-output set (id, process, payload, send interval),
- the total number of engine events executed,
- rollback/crash event timelines,
- zero oracle certification violations.

W=1 uses the plain ``Engine`` (the harness only installs
``ShardedEngine`` for ``shards > 1``), so it doubles as the reference;
``ShardedEngine(1)``-vs-``Engine`` equivalence is covered at the engine
level in test_shard_engine.py.
"""

import dataclasses

import pytest

from repro.perf.scenarios import scenario_by_name
from repro.sim.shard import ShardedEngine

# Scale 0.1 clamps every duration to the 40-virtual-second floor: large
# enough for crashes, recoveries and output commits to happen, small
# enough that 6 scenarios x 3 worker counts stay in test-suite budget.
SCALE = 0.1

SCENARIO_NAMES = [
    "ff_n8",
    "ff_n32",
    "ff_n128",
    "unreliable",
    "recovery_k2",
    "crash_storm",
]


def run_scenario(name, shards):
    """Run one bench scenario with ``shards`` workers; return a summary."""
    spec = scenario_by_name(name)
    spec = dataclasses.replace(
        spec, extra_config={**spec.extra_config, "shards": shards}
    )
    harness, duration = spec.build(scale=SCALE)
    try:
        harness.run(duration)
        metrics = harness.metrics()
        summary = {
            "outputs": sorted(
                (str(rec.output_id), rec.process, str(rec.payload),
                 str(rec.send_interval))
                for _, rec in harness.committed_outputs
            ),
            "events": harness.engine.events_executed,
            "deliveries": metrics.messages_delivered,
            "rollbacks": list(harness.rollback_events),
            "crashes": list(harness.crash_events),
            "violations": metrics.violations,
        }
        if shards > 1:
            assert isinstance(harness.engine, ShardedEngine)
            summary["events_per_shard"] = list(harness.engine.events_per_shard)
        return summary
    finally:
        harness.close()


_baselines = {}


def baseline(name):
    if name not in _baselines:
        _baselines[name] = run_scenario(name, shards=1)
    return _baselines[name]


@pytest.mark.parametrize("name", SCENARIO_NAMES)
@pytest.mark.parametrize("shards", [2, 4], ids=["w2", "w4"])
def test_sharded_run_is_bit_identical(name, shards):
    reference = baseline(name)
    sharded = run_scenario(name, shards)

    assert sharded["violations"] == []
    assert reference["violations"] == []
    assert sharded["outputs"] == reference["outputs"]
    assert sharded["events"] == reference["events"]
    assert sharded["deliveries"] == reference["deliveries"]
    assert sharded["rollbacks"] == reference["rollbacks"]
    assert sharded["crashes"] == reference["crashes"]


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_baseline_scenario_actually_exercises_the_protocol(name):
    # Guard against a vacuous differential: every scenario must commit
    # outputs at this scale, and the crash scenarios must crash.
    reference = baseline(name)
    assert reference["events"] > 0
    assert reference["outputs"], f"{name} committed no outputs at SCALE={SCALE}"
    if scenario_by_name(name).crashes:
        assert reference["crashes"]


@pytest.mark.parametrize("shards", [2, 4], ids=["w2", "w4"])
def test_work_actually_spreads_across_shards(shards):
    summary = run_scenario("ff_n32", shards)
    per_shard = summary["events_per_shard"]
    assert len(per_shard) == shards
    assert sum(per_shard) >= summary["events"]
    # Destination-keyed routing must not funnel everything into one heap.
    assert sum(1 for count in per_shard if count > 0) == shards
