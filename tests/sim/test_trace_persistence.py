"""Tests for trace JSONL export/import."""

from repro.analysis.timeline import render_timeline
from repro.sim.trace import Tracer


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record(1.0, "msg.deliver", 0, msg="m1", interval="(0,2)")
        tracer.record(2.5, "failure.crash", 1)
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2
        loaded = Tracer.load_jsonl(str(path))
        assert len(loaded.events) == 2
        assert loaded.events[0].time == 1.0
        assert loaded.events[0].data == {"msg": "m1", "interval": "(0,2)"}
        assert loaded.events[1].process == 1

    def test_non_serializable_values_stringified(self, tmp_path):
        tracer = Tracer()
        tracer.record(1.0, "x", 0, obj=object())
        path = tmp_path / "trace.jsonl"
        tracer.dump_jsonl(str(path))
        loaded = Tracer.load_jsonl(str(path))
        assert isinstance(loaded.events[0].data["obj"], str)

    def test_loaded_trace_renders_timeline(self, tmp_path):
        from repro.failures.injector import FailureSchedule
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.workloads.random_peers import RandomPeersWorkload

        config = SimConfig(n=3, seed=5)
        workload = RandomPeersWorkload(rate=0.3)
        harness = SimulationHarness(config, workload.behavior(),
                                    failures=FailureSchedule.single(60.0, 1))
        workload.install(harness, until=100.0)
        harness.run(140.0)
        path = tmp_path / "run.jsonl"
        harness.tracer.dump_jsonl(str(path))
        loaded = Tracer.load_jsonl(str(path))
        text = render_timeline(loaded, 3)
        assert "X" in text

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert Tracer().dump_jsonl(str(path)) == 0
        assert Tracer.load_jsonl(str(path)).events == []
