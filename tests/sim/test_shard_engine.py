"""ShardedEngine vs the single-heap Engine: identical firing order.

The deterministic cross-shard merge claims the fired-event sequence is a
pure function of ``(time, priority, seq)`` regardless of shard count or
routing hints.  These tests drive both engines through identical
randomized schedule scripts (including cancellations, re-entrant
scheduling from callbacks, and tie-breaker control) and assert the
executed sequences match element for element.
"""

import random

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.shard import ShardedEngine


def random_script(seed, steps=200):
    """A schedule script: (delay, priority, shard-hint, use_raw, cancel)."""
    rng = random.Random(seed)
    return [
        (
            rng.uniform(0.0, 20.0),
            rng.choice([0, 0, 0, 1, 2]),
            rng.choice([None, 0, 1, 2, 3, 7, 63]),
            rng.random() < 0.5,
            rng.random() < 0.15,
        )
        for _ in range(steps)
    ]


def execute(engine, script):
    """Run a script on ``engine``; returns the fired event ids in order."""
    fired = []
    handles = []
    for i, (delay, priority, shard, use_raw, cancel) in enumerate(script):
        if use_raw:
            engine.schedule_at_raw(delay, fired.append, (i,),
                                   priority=priority, shard=shard)
        else:
            handle = engine.schedule(delay, lambda i=i: fired.append(i),
                                     priority=priority, shard=shard)
            if cancel:
                handles.append(handle)
    for handle in handles:
        handle.cancel()
    engine.run()
    return fired


class TestFiringOrderEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_matches_single_heap_engine(self, shards, seed):
        script = random_script(seed)
        baseline = execute(Engine(), script)
        sharded = execute(ShardedEngine(shards), script)
        assert sharded == baseline

    @pytest.mark.parametrize("shards", [2, 4])
    def test_reentrant_scheduling_matches(self, shards):
        def drive(engine):
            fired = []

            def spawn(depth, tag):
                fired.append(tag)
                if depth < 3:
                    engine.schedule(0.5, lambda: spawn(depth + 1, tag * 10 + 1),
                                    shard=tag % 5)
                    engine.schedule_at_raw(engine.now + 0.5, spawn,
                                           (depth + 1, tag * 10 + 2),
                                           shard=(tag + 1) % 5)

            engine.schedule(1.0, lambda: spawn(0, 1))
            engine.schedule(1.0, lambda: spawn(0, 2), shard=3)
            engine.run()
            return fired

        assert drive(ShardedEngine(shards)) == drive(Engine())

    def test_same_time_ties_fire_in_priority_then_seq_order(self):
        engine = ShardedEngine(4)
        fired = []
        engine.schedule_at_raw(5.0, fired.append, ("late-seq-p0",), shard=3)
        engine.schedule_at_raw(5.0, fired.append, ("p1",), priority=1, shard=0)
        engine.schedule_at(5.0, lambda: fired.append("handle-p0"), shard=1)
        engine.run()
        assert fired == ["late-seq-p0", "handle-p0", "p1"]


class TestTieBreaker:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_candidates_presented_in_default_order(self, shards):
        engine = ShardedEngine(shards)
        seen = []
        for i in range(5):
            engine.schedule_at_raw(2.0, lambda: None, (),
                                   label=f"ev{i}", shard=i)

        def chooser(candidates):
            seen.append([c.label for c in candidates])
            return len(candidates) - 1  # fire the newest first

        engine.set_tie_breaker(chooser)
        engine.run()
        assert seen[0] == ["ev0", "ev1", "ev2", "ev3", "ev4"]
        # Unchosen candidates are requeued and re-presented.
        assert seen[1] == ["ev0", "ev1", "ev2", "ev3"]

    def test_wants_labels_tracks_tie_breaker(self):
        engine = ShardedEngine(2)
        assert not engine.wants_labels
        engine.set_tie_breaker(lambda candidates: 0)
        assert engine.wants_labels
        engine.set_tie_breaker(None)
        assert not engine.wants_labels


class TestBookkeeping:
    def test_routing_hints_spread_load(self):
        engine = ShardedEngine(4)
        for dst in range(16):
            engine.schedule_at_raw(float(dst), lambda: None, (), shard=dst)
        assert engine.events_per_shard == [4, 4, 4, 4]
        engine.run()
        assert engine.events_executed == 16

    def test_unhinted_records_round_robin(self):
        engine = ShardedEngine(3)
        for _ in range(9):
            engine.schedule(1.0, lambda: None)
        assert engine.events_per_shard == [3, 3, 3]

    def test_cancellation_and_compaction_across_shards(self):
        engine = ShardedEngine(4)
        keep = []
        handles = [engine.schedule(1.0, lambda i=i: keep.append(i), shard=i % 4)
                   for i in range(200)]
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending == 100
        # Compaction must have dropped the dead records from the heaps.
        assert sum(len(h) for h in engine._heaps) == 100
        engine.run()
        assert keep == list(range(1, 200, 2))

    def test_rejects_past_and_bad_shard_counts(self):
        with pytest.raises(ValueError):
            ShardedEngine(0)
        engine = ShardedEngine(2)
        engine.schedule_at_raw(1.0, lambda: None, ())
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at_raw(0.5, lambda: None, ())

    def test_run_until_advances_clock_like_base_engine(self):
        engine = ShardedEngine(2)
        engine.schedule_at_raw(10.0, lambda: None, (), shard=1)
        engine.run(until=5.0)
        assert engine.now == 5.0
        assert engine.pending == 1
        engine.run(until=15.0)
        assert engine.pending == 0
        assert engine.now == 15.0
