"""Tests for the checkpoint-only recovery family (lazy coordination)."""

import pytest

from repro.app.behavior import AppBehavior
from repro.checkpointing import (
    UNCOORDINATED,
    CheckpointConfig,
    CheckpointSimulation,
    CkptMessage,
    LazyCheckpointProcess,
    RecoveryCoordinator,
)
from repro.failures.injector import FailureSchedule
from repro.workloads.random_peers import RandomPeersWorkload


class Counter(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


def msg(src, dst, src_epoch, src_line=0, round=0, payload=None):
    return CkptMessage(src=src, dst=dst, payload=payload or {},
                       src_epoch=src_epoch, src_line=src_line, round=round)


def make(pid=0, n=3, z=2, sends=None):
    return LazyCheckpointProcess(pid, n, z, Counter(),
                                 send_hook=(sends.append if sends is not None
                                            else None))


class TestProtocolBasics:
    def test_initial_state(self):
        proc = make()
        assert proc.epoch == 1
        assert proc.line == 0
        assert len(proc.checkpoints) == 1
        assert proc.checkpoints[0].closes == 0

    def test_local_checkpoint_closes_epoch(self):
        proc = make(z=2)
        proc.take_local_checkpoint()
        assert proc.epoch == 2
        assert proc.checkpoints[-1].closes == 1
        assert proc.line == 0  # line advances every Z=2 epochs
        proc.take_local_checkpoint()
        assert proc.line == 1

    def test_delivery_records_direct_dependency(self):
        proc = make()
        proc.on_receive(msg(1, 0, src_epoch=3))
        assert (1, 3) in proc.epoch_deps[proc.epoch]
        assert proc.app_state["count"] == 1

    def test_environment_messages_record_no_dependency(self):
        proc = make()
        proc.on_receive(msg(-1, 0, src_epoch=0))
        assert proc.epoch_deps.get(proc.epoch, set()) == set()

    def test_sends_piggyback_epoch_and_line(self):
        sends = []
        proc = make(sends=sends)
        proc.on_receive(msg(1, 0, src_epoch=1, payload={"to": 2}))
        assert len(sends) == 1
        assert sends[0].src_epoch == proc.epoch
        assert sends[0].src_line == proc.line

    def test_stale_round_discarded(self):
        proc = make()
        assert proc.on_receive(msg(1, 0, src_epoch=1, round=5)) is False
        assert proc.messages_discarded == 1
        assert proc.app_state["count"] == 0

    def test_invalid_z_rejected(self):
        with pytest.raises(ValueError):
            make(z=0)


class TestInducedCheckpoints:
    def test_behind_receiver_checkpoints_before_delivery(self):
        proc = make(z=1)
        assert proc.line == 0
        proc.on_receive(msg(1, 0, src_epoch=9, src_line=3))
        assert proc.induced_checkpoints == 1
        assert proc.line == 3
        # The dependency landed in the *new* epoch, beyond the line.
        assert (1, 9) in proc.epoch_deps[proc.epoch]
        assert proc.checkpoints[-1].induced

    def test_same_line_no_induction(self):
        proc = make(z=1)
        proc.on_receive(msg(1, 0, src_epoch=1, src_line=0))
        assert proc.induced_checkpoints == 0

    def test_uncoordinated_never_induces(self):
        proc = make(z=UNCOORDINATED)
        proc.on_receive(msg(1, 0, src_epoch=9, src_line=7))
        assert proc.induced_checkpoints == 0
        assert proc.line == 0


class TestRestore:
    def test_restore_discards_suffix(self):
        proc = make()
        proc.on_receive(msg(1, 0, src_epoch=1))
        proc.take_local_checkpoint()      # closes epoch 1 with count=1
        proc.on_receive(msg(1, 0, src_epoch=2))
        assert proc.app_state["count"] == 2
        reopened = proc.restore_before(2)  # epoch 2 invalid
        assert reopened == 2
        assert proc.app_state["count"] == 1
        assert proc.work_lost == 1

    def test_restore_can_domino_to_initial_state(self):
        proc = make()
        proc.on_receive(msg(1, 0, src_epoch=1))
        proc.take_local_checkpoint()
        reopened = proc.restore_before(1)  # everything after epoch 0 invalid
        assert reopened == 1
        assert proc.app_state["count"] == 0


class TestCoordinator:
    def test_unaffected_processes_keep_state(self):
        a, b = make(pid=0, n=2), make(pid=1, n=2)
        a.on_receive(msg(-1, 0, src_epoch=0))
        coordinator = RecoveryCoordinator([a, b])
        restored = coordinator.recover(1)  # b crashes; a has no dep on b
        assert restored[0] == a.epoch
        assert a.app_state["count"] == 1
        assert coordinator.total_cascade == 0

    def test_direct_dependency_rolls_back(self):
        a, b = make(pid=0, n=2), make(pid=1, n=2)
        # a delivers a message from b's open epoch 1; b then crashes.
        a.on_receive(msg(1, 0, src_epoch=1))
        coordinator = RecoveryCoordinator([a, b])
        coordinator.recover(1)
        assert a.app_state["count"] == 0
        assert coordinator.total_cascade == 1

    def test_transitive_dependency_rolls_back(self):
        a, b, c = (make(pid=p, n=3) for p in range(3))
        b.on_receive(msg(2, 1, src_epoch=1))   # b <- c (open epoch)
        a.on_receive(msg(1, 0, src_epoch=b.epoch))  # a <- b
        coordinator = RecoveryCoordinator([a, b, c])
        coordinator.recover(2)
        assert b.app_state["count"] == 0
        assert a.app_state["count"] == 0
        assert coordinator.total_cascade == 2

    def test_checkpointed_dependency_survives(self):
        a, b = make(pid=0, n=2), make(pid=1, n=2)
        b.take_local_checkpoint()            # closes b's epoch 1
        a.on_receive(msg(1, 0, src_epoch=1))  # dep on b's *closed* epoch
        coordinator = RecoveryCoordinator([a, b])
        coordinator.recover(1)               # b loses only its open epoch 2
        assert a.app_state["count"] == 1

    def test_round_advances_globally(self):
        a, b = make(pid=0, n=2), make(pid=1, n=2)
        coordinator = RecoveryCoordinator([a, b])
        coordinator.recover(0)
        assert a.round == 1 and b.round == 1


class TestSimulationTradeoff:
    def _run(self, z, seed=42):
        config = CheckpointConfig(n=5, z=z, seed=seed)
        workload = RandomPeersWorkload(rate=0.5, min_hops=2, max_hops=5,
                                       output_fraction=0.0)
        sim = CheckpointSimulation(config, workload.behavior(),
                                   failures=FailureSchedule.single(200.0, 1))
        workload.install(sim, until=320.0)
        sim.run(400.0)
        return sim.metrics()

    def test_induced_checkpoints_decrease_with_z(self):
        tight = self._run(1)
        lazy = self._run(8)
        uncoordinated = self._run(UNCOORDINATED)
        assert (tight.induced_checkpoints > lazy.induced_checkpoints
                >= uncoordinated.induced_checkpoints == 0)

    def test_work_lost_grows_with_z(self):
        tight = self._run(1)
        uncoordinated = self._run(UNCOORDINATED)
        assert uncoordinated.work_lost > tight.work_lost

    def test_domino_effect_without_coordination(self):
        # The uncoordinated run loses a large share of all work performed.
        metrics = self._run(UNCOORDINATED)
        assert metrics.work_lost > metrics.deliveries / 4

    def test_determinism(self):
        assert self._run(2).as_row() == self._run(2).as_row()

    def test_experiment_api(self):
        from repro.experiments.lazy_checkpointing import run

        rows = run(n=4, zs=[1, UNCOORDINATED], duration=300.0)
        assert rows[0]["ckpts_induced"] > rows[1]["ckpts_induced"]
        assert rows[1]["work_lost"] >= rows[0]["work_lost"]
