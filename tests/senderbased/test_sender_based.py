"""Tests for sender-based message logging (reference [1] family)."""

import pytest

from repro.app.behavior import AppBehavior
from repro.failures.injector import CrashEvent, FailureSchedule
from repro.senderbased import (
    SBAck,
    SBCheckpointNote,
    SBConfirm,
    SBLogRequest,
    SBMessage,
    SenderBasedConfig,
    SenderBasedProcess,
    SenderBasedSimulation,
)
from repro.workloads.random_peers import RandomPeersWorkload


class Forwarder(AppBehavior):
    def initial_state(self, pid, n):
        return {"count": 0}

    def on_message(self, state, payload, ctx):
        state["count"] += 1
        if isinstance(payload, dict) and "to" in payload:
            ctx.send(payload["to"], {})
        return state


def proc(pid=0, n=3):
    return SenderBasedProcess(pid, n, Forwarder())


def env_msg(dst, payload=None, seq=0):
    return SBMessage(src=-1, dst=dst, payload=payload or {}, msg_id=(-1, seq))


def peer_msg(src, dst, seq=0, payload=None, rsn=None):
    return SBMessage(src=src, dst=dst, payload=payload or {},
                     msg_id=(src, seq), rsn=rsn)


class TestDataPath:
    def test_delivery_assigns_rsn_and_acks(self):
        p = proc()
        acks, released = p.on_message(peer_msg(1, 0, seq=0))
        assert p.rsn == 1
        assert acks == [SBAck(0, (1, 0), 1)]
        assert released == []

    def test_environment_input_force_logged_no_ack(self):
        p = proc()
        acks, _released = p.on_message(env_msg(0))
        assert acks == []
        assert p.sync_writes == 1

    def test_send_gate_blocks_until_confirm(self):
        p = proc()
        _acks, released = p.on_message(peer_msg(1, 0, seq=0,
                                                payload={"to": 2}))
        assert released == []          # delivery unconfirmed: gate closed
        assert len(p.send_buffer) == 1
        released = p.on_confirm(SBConfirm(1, (1, 0)))
        assert len(released) == 1      # confirm opens the gate
        assert released[0].dst == 2
        assert released[0].msg_id in p.sent_log

    def test_input_triggered_send_released_immediately(self):
        # Env inputs are force-logged at delivery, so the gate stays open.
        p = proc()
        _acks, released = p.on_message(env_msg(0, payload={"to": 2}))
        assert len(released) == 1

    def test_sender_records_rsn_and_confirms(self):
        sender = proc(pid=1)
        _acks, _rel = sender.on_message(env_msg(1, payload={"to": 0}))
        msg = list(sender.sent_log.values())[0].message
        confirms = sender.on_ack(SBAck(0, msg.msg_id, 7))
        assert confirms == [SBConfirm(1, msg.msg_id)]
        assert sender.sent_log[msg.msg_id].rsn == 7

    def test_duplicate_delivery_suppressed(self):
        p = proc()
        p.on_message(peer_msg(1, 0, seq=0))
        p.on_message(peer_msg(1, 0, seq=0))
        assert p.deliveries == 1
        assert p.duplicates == 1


class TestRecovery:
    def test_crash_restores_checkpoint_and_enters_recovery(self):
        p = proc()
        p.on_message(env_msg(0, seq=0))
        p.checkpoint()
        p.on_message(env_msg(0, seq=1))
        request = p.crash()
        assert p.recovering
        assert p.app_state["count"] == 1
        assert request.after_rsn == 1

    def test_log_request_returns_unacked_and_post_checkpoint_copies(self):
        sender = proc(pid=1)
        sender.on_message(env_msg(1, seq=0, payload={"to": 0}))
        sender.on_message(env_msg(1, seq=1, payload={"to": 0}))
        msgs = sorted(sender.sent_log)
        # First copy was acked with rsn 5; second never acked.
        sender.on_ack(SBAck(0, msgs[0], 5))
        reply = sender.on_log_request(SBLogRequest(0, after_rsn=3))
        ids = {m.msg_id for m in reply.copies}
        assert ids == set(msgs)
        reply = sender.on_log_request(SBLogRequest(0, after_rsn=5))
        ids = {m.msg_id for m in reply.copies}
        assert ids == {msgs[1]}  # rsn-5 copy is at or below the checkpoint

    def test_finish_recovery_replays_in_rsn_order(self):
        class Recorder(AppBehavior):
            def initial_state(self, pid, n):
                return {"log": []}

            def on_message(self, state, payload, ctx):
                state["log"].append(payload["tag"])
                return state

        p = SenderBasedProcess(0, 3, Recorder())
        p.crash()
        from repro.senderbased.protocol import SBLogReply

        replies = [
            SBLogReply(1, 0, [peer_msg(1, 0, seq=0, payload={"tag": "b"},
                                       rsn=2)]),
            SBLogReply(2, 0, [peer_msg(2, 0, seq=0, payload={"tag": "a"},
                                       rsn=1),
                              peer_msg(2, 0, seq=1, payload={"tag": "c"})]),
        ]
        p.finish_recovery(replies)
        # RSN-stamped copies replay in order; the unacked one comes last.
        assert p.app_state["log"] == ["a", "b", "c"]
        assert not p.recovering

    def test_messages_during_recovery_buffered(self):
        p = proc()
        p.crash()
        acks, released = p.on_message(peer_msg(1, 0, seq=9))
        assert (acks, released) == ([], [])
        assert p.deliveries == 0          # buffered, not delivered yet
        acks, _released = p.finish_recovery([])
        assert p.deliveries == 1          # drained after the replay
        assert len(acks) == 1

    def test_reack_unconfirmed_for_recovered_sender(self):
        p = proc()
        p.on_message(peer_msg(1, 0, seq=0))
        p.on_message(peer_msg(2, 0, seq=0))
        reacks = p.reack_unconfirmed(1)
        assert reacks == [SBAck(0, (1, 0), 1)]

    def test_replay_regenerates_identical_send_ids(self):
        # send_seq is checkpointed, so replayed deliveries regenerate the
        # same message ids and receivers can deduplicate.
        sender = proc(pid=1)
        sender.on_message(env_msg(1, seq=0, payload={"to": 0}))
        first_id = sorted(sender.sent_log)[0]
        sender.checkpoint()
        sender.crash()
        from repro.senderbased.protocol import SBLogReply

        sender.finish_recovery([SBLogReply(0, 1, [])])
        # Nothing new delivered post-checkpoint, so send_seq resumes where
        # the checkpoint left it.
        sender.on_message(env_msg(1, seq=1, payload={"to": 0}))
        second_id = max(sender.sent_log)
        assert second_id == (1, first_id[1] + 1)

    def test_finish_recovery_requires_recovery_mode(self):
        with pytest.raises(RuntimeError):
            proc().finish_recovery([])


class TestGarbageCollection:
    def test_checkpoint_note_prunes_confirmed_copies(self):
        sender = proc(pid=1)
        sender.on_message(env_msg(1, seq=0, payload={"to": 0}))
        sender.on_message(env_msg(1, seq=1, payload={"to": 0}))
        msgs = sorted(sender.sent_log)
        sender.on_ack(SBAck(0, msgs[0], 1))
        reclaimed = sender.on_checkpoint_note(SBCheckpointNote(0, 1))
        assert reclaimed == 1
        assert msgs[0] not in sender.sent_log
        assert msgs[1] in sender.sent_log  # unacked: must be kept


class TestSimulation:
    def _run(self, failures=None, seed=42, duration=500.0):
        config = SenderBasedConfig(n=5, seed=seed)
        workload = RandomPeersWorkload(rate=0.6, min_hops=2, max_hops=5,
                                       output_fraction=0.0)
        sim = SenderBasedSimulation(config, workload.behavior(),
                                    failures=failures)
        workload.install(sim, until=duration * 0.8)
        sim.run(duration)
        return sim

    def test_failure_free_run(self):
        sim = self._run()
        metrics = sim.metrics()
        assert metrics.deliveries > 200
        assert metrics.sync_writes < metrics.deliveries / 2
        assert metrics.acks > 0
        assert all(not p.unconfirmed for p in sim.processes)

    def test_crash_recovers_all_confirmed_work(self):
        sim = self._run(failures=FailureSchedule.single(250.0, 1))
        metrics = sim.metrics()
        assert metrics.crashes == 1
        assert metrics.replayed > 0
        assert not sim.processes[1].recovering
        assert all(not p.send_buffer for p in sim.processes)

    def test_overlapping_crashes_rejected(self):
        with pytest.raises(ValueError):
            self._run(failures=FailureSchedule([CrashEvent(100.0, 1),
                                                CrashEvent(101.0, 2)]))

    def test_sequential_crashes_ok(self):
        sim = self._run(failures=FailureSchedule([CrashEvent(150.0, 1),
                                                  CrashEvent(300.0, 2)]))
        assert sim.metrics().crashes == 2

    def test_gc_bounds_sender_logs(self):
        sim = self._run()
        assert sim.gc_reclaimed > 0
        for p in sim.processes:
            assert len(p.sent_log) < 200

    def test_determinism(self):
        a = self._run(seed=7).metrics().as_row()
        b = self._run(seed=7).metrics().as_row()
        assert a == b

    def test_experiment_api(self):
        from repro.experiments.sender_based import run

        rows = run(n=4, duration=250.0)
        by_name = {r["discipline"]: r for r in rows}
        rb = by_name["receiver-based sync"]
        sb = by_name["sender-based (ref [1])"]
        k0 = by_name["K=0 optimistic"]
        assert rb["sync_w"] > sb["sync_w"]
        assert sb["ctl_msgs"] > rb["ctl_msgs"]
        assert k0["latency_cost"] > sb["latency_cost"]
