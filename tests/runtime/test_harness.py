"""Runtime harness tests: wiring, timers, failure handling, invariants."""

from repro.failures.injector import CrashEvent, FailureSchedule

from helpers import build_sim as build


class TestFailureFreeRuns:
    def test_traffic_flows(self):
        harness = build()
        harness.run(300.0)
        metrics = harness.metrics()
        assert metrics.messages_delivered > 50
        assert metrics.messages_released > 0
        assert metrics.crashes == 0
        assert not metrics.violations

    def test_send_buffer_drains_at_settle(self):
        harness = build(k=0)
        harness.run(300.0)
        for host in harness.hosts:
            assert not host.protocol.send_buffer
        assert not harness.metrics().violations

    def test_outputs_commit(self):
        harness = build()
        harness.run(300.0)
        assert harness.metrics().outputs_committed > 0

    def test_oracle_consistent_without_failures(self):
        harness = build()
        harness.run(300.0)
        assert harness.oracle.check_consistency() == []
        assert harness.oracle.rolled_back_intervals == 0


class TestCrashHandling:
    def test_crash_and_restart(self):
        harness = build(failures=FailureSchedule.single(100.0, 1))
        harness.run(300.0)
        metrics = harness.metrics()
        assert metrics.crashes == 1
        assert not metrics.violations
        assert not harness.hosts[1].down

    def test_app_messages_to_down_process_are_lost(self):
        harness = build(failures=FailureSchedule.single(100.0, 1),
                        restart_delay=50.0, rate=2.0)
        harness.run(300.0)
        assert harness.metrics().app_messages_lost > 0

    def test_control_messages_queued_across_downtime(self):
        # Two crashes close together: the announcement of the first must
        # reach the second process even though it was down when broadcast.
        harness = build(
            n=4,
            failures=FailureSchedule([CrashEvent(100.0, 1), CrashEvent(100.5, 2)]),
            restart_delay=30.0,
        )
        harness.run(400.0)
        metrics = harness.metrics()
        assert metrics.crashes == 2
        assert not metrics.violations
        # P2 eventually learned of P1's failure (it is in its iet).
        assert harness.hosts[2].protocol.iet.row_size(1) >= 1

    def test_crash_of_down_process_is_noop(self):
        harness = build(
            failures=FailureSchedule([CrashEvent(100.0, 1), CrashEvent(101.0, 1)]),
            restart_delay=30.0,
        )
        harness.run(300.0)
        assert harness.metrics().crashes == 1

    def test_crash_near_horizon_restarts_during_settle(self):
        harness = build(failures=FailureSchedule.single(295.0, 1),
                        restart_delay=100.0)
        harness.run(300.0)
        assert not harness.hosts[1].down
        assert not harness.metrics().violations

    def test_repeated_crashes_of_same_process(self):
        schedule = FailureSchedule([CrashEvent(t, 0) for t in (50.0, 120.0, 190.0)])
        harness = build(failures=schedule)
        harness.run(400.0)
        metrics = harness.metrics()
        assert metrics.crashes == 3
        assert not metrics.violations
        assert harness.hosts[0].protocol.current.inc >= 3


class TestInvariantChecks:
    def test_theorem4_checked_on_every_release(self):
        # With invariants on, a clean run reports no violations across Ks.
        for k in (0, 1, 2, 4):
            harness = build(k=k, failures=FailureSchedule.single(100.0, 0))
            harness.run(300.0)
            assert not harness.metrics().violations, f"K={k}"

    def test_metrics_k_resolution(self):
        harness = build(k=None)
        harness.run(50.0)
        assert harness.metrics().k == 4


class TestDeterminism:
    def test_same_seed_bitwise_identical_metrics(self):
        a = build(seed=11, failures=FailureSchedule.single(100.0, 2))
        a.run(300.0)
        b = build(seed=11, failures=FailureSchedule.single(100.0, 2))
        b.run(300.0)
        assert a.metrics().as_row() == b.metrics().as_row()
        assert a.engine.events_executed == b.engine.events_executed

    def test_different_seed_differs(self):
        a = build(seed=11)
        a.run(300.0)
        b = build(seed=12)
        b.run(300.0)
        assert a.metrics().as_row() != b.metrics().as_row()


class TestTimers:
    def test_checkpoints_happen(self):
        harness = build(checkpoint_interval=50.0)
        harness.run(300.0)
        for host in harness.hosts:
            assert host.protocol.storage.checkpoints_taken >= 2

    def test_flushes_happen(self):
        harness = build(flush_interval=20.0)
        harness.run(300.0)
        assert any(h.protocol.storage.async_writes > 0 for h in harness.hosts)

    def test_notifications_broadcast(self):
        harness = build()
        harness.run(100.0)
        assert harness.network.control_messages_sent > 0
