"""Tests for notification dissemination modes (broadcast vs fanout)."""

from helpers import build_sim


def build(fanout=None, gossip=True, n=6, seed=4):
    harness = build_sim(n=n, k=2, seed=seed, until=250.0,
                        notify_fanout=fanout, gossip_log_tables=gossip,
                        trace_enabled=False)
    harness.run(350.0)
    return harness


class TestNotifyFanout:
    def test_fanout_reduces_control_traffic(self):
        broadcast = build(fanout=None)
        fanout1 = build(fanout=1)
        assert (fanout1.network.control_messages_sent
                < broadcast.network.control_messages_sent)

    def test_fanout_run_stays_consistent(self):
        harness = build(fanout=1)
        assert harness.metrics().violations == []

    def test_fanout_larger_than_peers_is_clamped(self):
        harness = build(fanout=99)
        assert harness.metrics().violations == []

    def test_gossip_beats_own_row_under_fanout(self):
        gossip = build(fanout=1, gossip=True)
        own_row = build(fanout=1, gossip=False)
        # Transitive spreading releases held messages sooner.
        assert (gossip.metrics().mean_send_hold
                <= own_row.metrics().mean_send_hold)

    def test_broadcast_modes_equivalent(self):
        # Under broadcast, own-row and full-table notifications give every
        # process the same (one-hop) information.
        full = build(fanout=None, gossip=True)
        own = build(fanout=None, gossip=False)
        assert (full.metrics().mean_send_hold == own.metrics().mean_send_hold)
