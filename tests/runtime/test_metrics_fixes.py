"""Metrics-aggregation regressions: recovery-span attribution and
division guards for runs that release or commit nothing."""

from repro.failures.injector import FailureSchedule

from helpers import build_sim as build


class TestRecoverySpanAttribution:
    def test_rollbacks_attach_to_their_own_crash_window(self):
        harness = build(until=None)
        # Two crashes; each is followed by its own rollback wave.  The
        # old aggregation attributed the late rollbacks to *both*
        # crashes, reporting (110 + 10) / 2 = 60 instead of 7.5.
        harness.crash_events = [(100.0, 1), (200.0, 2)]
        harness.rollback_events = [(105.0, 3), (210.0, 0)]
        metrics = harness.metrics()
        assert metrics.mean_recovery_span == ((105.0 - 100.0) + (210.0 - 200.0)) / 2

    def test_crash_with_no_rollbacks_contributes_no_span(self):
        harness = build(until=None)
        harness.crash_events = [(100.0, 1), (200.0, 2)]
        harness.rollback_events = [(201.0, 0)]
        metrics = harness.metrics()
        assert metrics.mean_recovery_span == 1.0

    def test_single_crash_unchanged(self):
        harness = build(until=None)
        harness.crash_events = [(50.0, 1)]
        harness.rollback_events = [(52.0, 0), (58.0, 2)]
        metrics = harness.metrics()
        assert metrics.mean_recovery_span == 8.0

    def test_two_crash_run_end_to_end(self):
        from repro.failures.injector import CrashEvent

        harness = build(
            n=4, seed=3,
            failures=FailureSchedule([CrashEvent(80.0, 1), CrashEvent(160.0, 2)]),
        )
        harness.run(240.0)
        metrics = harness.metrics()
        assert metrics.crashes == 2
        # Every per-crash span is bounded by that crash's window, so the
        # mean can never exceed the distance from a crash to the end of
        # the settled run.
        assert 0.0 <= metrics.mean_recovery_span <= harness.engine.now - 80.0


class TestMeanGuards:
    def test_mean_send_hold_zero_when_nothing_released(self):
        harness = build(until=None)
        stats = harness.hosts[0].protocol.stats
        stats.send_hold_time_total = 37.5  # raw total with zero releases
        metrics = harness.metrics()
        assert metrics.messages_released == 0
        assert metrics.mean_send_hold == 0.0

    def test_mean_output_latency_zero_when_nothing_committed(self):
        harness = build(until=None)
        stats = harness.hosts[0].protocol.stats
        stats.output_wait_total = 12.0
        metrics = harness.metrics()
        assert metrics.outputs_committed == 0
        assert metrics.mean_output_latency == 0.0

    def test_means_still_divide_when_counts_positive(self):
        harness = build(until=None)
        stats = harness.hosts[0].protocol.stats
        stats.send_hold_time_total = 30.0
        stats.messages_released = 10
        stats.output_wait_total = 8.0
        stats.outputs_committed = 4
        metrics = harness.metrics()
        assert metrics.mean_send_hold == 3.0
        assert metrics.mean_output_latency == 2.0
