"""Per-message K plumbing regressions (Section 4.2).

Three observers consume a released message's K bound: the protocol's own
Send_buffer check, the harness's online release-bound check, and the
post-hoc oracle fed by ``dep.release`` trace records.  Before the fixes
under test, only the first honoured ``msg.k_limit``; the other two read
the *global* K and flagged false Theorem-4 violations whenever an
application (or the adaptive-K controller) stamped a message with a bound
above the system-wide setting.  A fourth regression pins the
restart-boundary output-latency fix: outputs re-enqueued by recovery
replay are backdated to the crash instant instead of restarting their
wait clock at replay time.
"""

from repro.app.behavior import AppBehavior
from repro.core.effects import CommitOutput, ReleaseMessage
from repro.oracle.ingest import certify_tracer

from helpers import build_sim, deliver_env, effects_of, make_proc


class _KickSender(AppBehavior):
    """On the kick, send one message bounded at K=2 (above the global K)."""

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and payload.get("kick"):
            ctx.send((ctx.pid + 1) % ctx.n, {"hop": True}, k=2)
        return state


class _NullWorkload:
    """A workload shim: a fixed behaviour, no scheduled traffic."""

    def __init__(self, behavior):
        self._behavior = behavior

    def behavior(self):
        return self._behavior

    def install(self, harness, until):
        pass


def _run_k0_with_bounded_send():
    harness = build_sim(n=3, k=0, workload=_NullWorkload(_KickSender()),
                        until=None, dep_trace=True)
    harness.inject_at(1.0, 0, {"kick": True})
    harness.run(60.0)
    return harness


class TestPerMessageKAboveGlobal:
    """Global K=0, one send stamped k=2: legal per Theorem 2, and the
    protocol releases it with one non-stable dependency.  Every checker
    must judge it against the *message's* bound, not the global one."""

    def test_online_release_check_honours_message_bound(self):
        # Pre-fix: check_release_bound compared the release-time revoker
        # count (1: the sender's own unflushed interval) against the
        # global K=0 and reported a false Theorem-4 violation.
        harness = _run_k0_with_bounded_send()
        assert harness.metrics().violations == []
        harness.close()

    def test_release_trace_records_message_bound(self):
        # Pre-fix: dep.release records carried no K at all, so no
        # post-hoc consumer *could* get this right.
        harness = _run_k0_with_bounded_send()
        releases = [e for e in harness.tracer.events
                    if e.category == "dep.release"]
        assert releases, "the bounded send never released"
        assert any(e.data.get("k") == 2 for e in releases)
        harness.close()

    def test_posthoc_certification_honours_message_bound(self):
        # Pre-fix: the oracle's _release handler checked every release
        # against the run-wide K=0 and the certification came back dirty.
        harness = _run_k0_with_bounded_send()
        cert = certify_tracer(harness.tracer, n=3, k=0)
        assert cert.violations == []
        harness.close()

    def test_unbounded_sends_still_checked_against_global_k(self):
        # The fix must not loosen anything: plain sends (no k_limit)
        # keep the global bound, and the whole default suite still
        # certifies against it.
        harness = build_sim(n=4, k=1, seed=3, dep_trace=True, until=150.0)
        harness.run(200.0)
        assert harness.metrics().violations == []
        assert certify_tracer(harness.tracer, n=4, k=1).violations == []
        harness.close()


class _Forwarder(AppBehavior):
    """P1: forward the kick to P0 as an app message."""

    def on_message(self, state, payload, ctx):
        if isinstance(payload, dict) and payload.get("kick"):
            ctx.send(0, {"fwd": True})
        return state


class _Emitter(AppBehavior):
    """P0: emit one output per delivered message."""

    def on_message(self, state, payload, ctx):
        ctx.output({"done": True})
        return state


class TestRestartBoundaryOutputWait:
    """An output whose wait spans a crash is backdated to the crash
    instant when replay re-enqueues it: the committed wait must include
    the downtime, not restart at replay time."""

    def _clocked_pair(self):
        clock = {"t": 0.0}
        now = lambda: clock["t"]  # noqa: E731
        p0 = make_proc(0, n=2, k=2, behavior=_Emitter(), now_fn=now)
        p1 = make_proc(1, n=2, k=2, behavior=_Forwarder(), now_fn=now)
        return clock, p0, p1

    def _send_via_p1(self, clock, p0, p1):
        """Deliver the kick at P1; return its released message to P0."""
        clock["t"] = 5.0
        released = effects_of(deliver_env(p1, {"kick": True}), ReleaseMessage)
        assert len(released) == 1
        return released[0].message

    def test_committed_wait_spans_the_downtime(self):
        clock, p0, p1 = self._clocked_pair()
        msg = self._send_via_p1(clock, p0, p1)

        clock["t"] = 10.0
        assert effects_of(p0.on_receive(msg), CommitOutput) == []

        # Flush resolves P0's own dependency; the output stays held on
        # P1's still-volatile sending interval.
        clock["t"] = 50.0
        assert effects_of(p0.flush(), CommitOutput) == []

        clock["t"] = 100.0
        p0.crash()
        clock["t"] = 110.0
        assert effects_of(p0.restart(), CommitOutput) == []

        # P1's flush makes its interval stable; the notification lets
        # the replayed output commit.
        clock["t"] = 130.0
        p1.flush()
        commits = effects_of(p0.on_log_notification(
            p1.make_log_notification()), CommitOutput)
        assert len(commits) == 1
        # Backdated to the crash (t=100), not the replay (t=110): the
        # pre-fix wait of 20 silently dropped the 10 units of downtime.
        assert commits[0].wait == 30.0
        assert p0.stats.output_wait_total == 30.0

    def test_wait_without_a_crash_is_unchanged(self):
        clock, p0, p1 = self._clocked_pair()
        msg = self._send_via_p1(clock, p0, p1)

        clock["t"] = 10.0
        p0.on_receive(msg)
        clock["t"] = 50.0
        p0.flush()
        clock["t"] = 130.0
        p1.flush()
        commits = effects_of(p0.on_log_notification(
            p1.make_log_notification()), CommitOutput)
        assert len(commits) == 1
        assert commits[0].wait == 120.0
