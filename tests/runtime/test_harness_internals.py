"""Harness internals: effect dispatch, invariant-check plumbing,
injection semantics."""

import pytest

from repro.core.effects import Effect
from repro.core.entry import Entry
from repro.net.message import LoggingRequest
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload

from helpers import build_sim


def build(n=3, **kwargs):
    return build_sim(n=n, seed=1, rate=0.2, until=None,
                     trace_enabled=True, **kwargs)


class TestEffectDispatch:
    def test_unknown_effect_raises(self):
        harness = build()

        class Mystery(Effect):
            pass

        with pytest.raises(TypeError):
            harness.hosts[0].execute([Mystery()])

    def test_unknown_payload_raises(self):
        harness = build()
        with pytest.raises(TypeError):
            harness.hosts[0].incoming(object())

    def test_logging_request_dispatch(self):
        harness = build(output_driven_logging=True)
        harness.hosts[0].incoming(LoggingRequest(origin=1))
        harness.engine.run()
        # The flush reply reached P1 as a control message.
        assert harness.network.control_messages_sent >= 1


class TestInjection:
    def test_injections_have_unique_ids(self):
        harness = build()
        harness.inject_now(0, {"a": 1})
        harness.inject_now(0, {"a": 2})
        harness.engine.run()
        assert harness.hosts[0].protocol.stats.deliveries == 2
        assert harness.hosts[0].protocol.stats.duplicates_dropped == 0

    def test_injection_to_down_process_is_lost(self):
        harness = build(restart_delay=50.0)
        harness.hosts[1].crash()
        harness.inject_now(1, {"a": 1})
        assert harness.hosts[1].lost_app_messages == 1

    def test_control_to_down_process_is_queued(self):
        from repro.net.message import FailureAnnouncement

        harness = build(restart_delay=50.0)
        harness.hosts[1].crash()
        ann = FailureAnnouncement(0, Entry(0, 1))
        harness.hosts[1].incoming(ann)
        assert harness.hosts[1].pending_control == [ann]
        harness.hosts[1].restart()
        assert harness.hosts[1].pending_control == []
        assert harness.hosts[1].protocol.iet.lookup(0, 0) == 1

    def test_logging_request_dropped_while_down(self):
        harness = build(restart_delay=50.0)
        harness.hosts[1].crash()
        harness.hosts[1].incoming(LoggingRequest(origin=0))
        # Best-effort hint: neither queued nor counted as an app loss.
        assert harness.hosts[1].pending_control == []
        assert harness.hosts[1].lost_app_messages == 0


class TestInvariantPlumbing:
    def test_violations_propagate_to_metrics(self):
        harness = build()
        harness.violations.append("synthetic violation")
        assert "synthetic violation" in harness.metrics().violations

    def test_check_invariants_off_skips_oracle_checks(self):
        config = SimConfig(n=3, seed=1, check_invariants=False,
                           trace_enabled=False)
        workload = RandomPeersWorkload(rate=0.4)
        harness = SimulationHarness(config, workload.behavior())
        workload.install(harness, until=60.0)
        harness.run(100.0)
        # No consistency pass ran, so violations stay empty by construction.
        assert harness.metrics().violations == []

    def test_restart_of_up_process_is_noop(self):
        harness = build()
        before = harness.hosts[0].protocol.current
        harness.hosts[0].restart()
        assert harness.hosts[0].protocol.current == before
