"""Harness-level behaviour of the unreliable-network stack, plus the
settle-horizon fix: failure events scheduled beyond the run's duration
must not fire during settle()."""

from repro.failures.injector import (
    CrashEvent,
    FailureSchedule,
    HealEvent,
    LossEvent,
    PartitionEvent,
)
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload


def build(config, schedule=None, rate=0.5, until=150.0):
    workload = RandomPeersWorkload(rate=rate, min_hops=2, max_hops=5)
    harness = SimulationHarness(config, workload.behavior(),
                                failures=schedule)
    workload.install(harness, until=until)
    return harness


class TestSettleHorizon:
    def test_crash_beyond_horizon_never_fires(self):
        config = SimConfig(n=4, seed=1, trace_enabled=False)
        schedule = FailureSchedule([CrashEvent(100.0, 1),
                                    CrashEvent(500.0, 2)])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        # The in-horizon crash fired; the beyond-horizon one was cancelled
        # instead of firing mid-settle.
        assert [pid for _, pid in harness.crash_events] == [1]
        assert harness.metrics().crashes == 1
        assert not any(host.down for host in harness.hosts)

    def test_network_events_beyond_horizon_cancelled_too(self):
        config = SimConfig(n=4, seed=1, trace_enabled=False)
        schedule = FailureSchedule([PartitionEvent(500.0, ((1,),))])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        assert harness.network.faults is not None
        assert not harness.network.faults.partition_active
        assert harness.metrics().partitions == 0

    def test_violation_free_with_boundary_crash(self):
        # A crash just inside the horizon still works end to end.
        config = SimConfig(n=4, seed=3, trace_enabled=False)
        schedule = FailureSchedule([CrashEvent(199.0, 0)])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        assert harness.metrics().violations == []


class TestFaultResolution:
    def test_reliable_config_is_legacy_path(self):
        harness = build(SimConfig(n=4, seed=0, trace_enabled=False))
        assert harness.network.faults is None
        assert harness.network.reliable is None
        assert not harness.ack_enabled
        assert harness.config.retransmit_timeout == 0.0

    def test_fault_rates_enable_stack(self):
        config = SimConfig(n=4, seed=0, drop_rate=0.05, trace_enabled=False)
        harness = build(config)
        assert harness.network.faults is not None
        assert harness.network.reliable is not None
        assert harness.ack_enabled
        # The app retransmission timer is defaulted on.
        assert harness.config.retransmit_timeout == config.ctl_rto

    def test_schedule_network_events_enable_stack(self):
        config = SimConfig(n=4, seed=0, trace_enabled=False)
        schedule = FailureSchedule([PartitionEvent(50.0, ((1,),)),
                                    HealEvent(80.0)])
        harness = build(config, schedule)
        assert harness.network.faults is not None
        assert harness.ack_enabled

    def test_ack_layer_forced_off(self):
        config = SimConfig(n=4, seed=0, drop_rate=0.05, ack_layer=False,
                           trace_enabled=False)
        harness = build(config)
        assert harness.network.faults is not None
        assert harness.network.reliable is None
        assert harness.config.retransmit_timeout == 0.0


class TestUnreliableRuns:
    def test_lossy_run_is_violation_free_and_complete(self):
        config = SimConfig(n=4, k=2, seed=11, drop_rate=0.05,
                           duplicate_rate=0.02, reorder_rate=0.05,
                           trace_enabled=False)
        harness = build(config, until=150.0)
        harness.run(200.0)
        m = harness.metrics()
        assert m.violations == []
        assert m.app_drops > 0
        assert m.timer_retransmissions > 0
        assert m.acks_received > 0
        assert m.retransmit_budget_exhausted == 0
        assert m.outputs_pending == 0

    def test_channel_duplicates_suppressed_with_oracle_consistency(self):
        config = SimConfig(n=4, k=2, seed=5, duplicate_rate=0.2,
                           trace_enabled=False)
        schedule = FailureSchedule([CrashEvent(100.0, 1)])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        m = harness.metrics()
        assert m.duplicates_injected > 0
        assert m.duplicates_dropped > 0
        assert m.violations == []

    def test_partition_isolates_then_heals(self):
        config = SimConfig(n=4, k=2, seed=2, trace_enabled=False)
        schedule = FailureSchedule([PartitionEvent(60.0, ((3,),)),
                                    HealEvent(120.0)])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        m = harness.metrics()
        assert m.partitions == 1
        assert m.partition_time == 60.0
        assert m.partition_drops > 0
        assert m.violations == []
        assert m.outputs_pending == 0

    def test_unhealed_partition_closed_by_settle(self):
        config = SimConfig(n=4, k=2, seed=2, trace_enabled=False)
        schedule = FailureSchedule([PartitionEvent(100.0, ((3,),))])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        assert not harness.network.faults.partition_active
        m = harness.metrics()
        assert m.partition_time >= 100.0
        assert m.violations == []

    def test_loss_event_changes_rates_mid_run(self):
        config = SimConfig(n=4, k=2, seed=9, trace_enabled=False)
        schedule = FailureSchedule([LossEvent(100.0, drop=0.3)])
        harness = build(config, schedule, until=150.0)
        harness.run(200.0)
        m = harness.metrics()
        assert m.app_drops + m.control_drops > 0
        assert harness.network.faults.default.drop == 0.3
        assert m.violations == []

    def test_same_seed_same_trace(self):
        def run_once():
            config = SimConfig(n=4, k=2, seed=13, drop_rate=0.05,
                               duplicate_rate=0.02, reorder_rate=0.05)
            schedule = FailureSchedule([CrashEvent(80.0, 1),
                                        PartitionEvent(120.0, ((3,),)),
                                        HealEvent(150.0)])
            harness = build(config, schedule, until=150.0)
            harness.run(200.0)
            return harness

        first, second = run_once(), run_once()
        assert first.tracer.events == second.tracer.events
        assert first.metrics().violations == []


class TestFailStopControlRetransmission:
    """A crashed process must not transmit: its pending reliable-control
    envelopes are parked on crash and resumed (not dropped) on restart."""

    def _build(self):
        from repro.app.behavior import EchoBehavior
        from repro.net.message import LogProgressNotification

        config = SimConfig(n=3, seed=7, ack_layer=True)
        harness = SimulationHarness(config, EchoBehavior())
        notif = LogProgressNotification(1, [{} for _ in range(3)])
        # A reliable control send from P1 whose destination dies before the
        # envelope arrives: no ack will ever come back.
        harness.network.send_control(1, 2, notif, reliable=True)
        harness.engine.schedule(0.2, harness.hosts[2].crash)
        harness.engine.schedule(0.5, harness.hosts[1].crash)
        return harness

    def test_no_transmission_while_source_is_down(self):
        harness = self._build()
        rtx = harness.network.reliable
        # Run past two rto periods (4.0, 8.0) but short of the restarts at
        # ~10.x: a dead source must stay silent the whole time.
        harness.run(9.0, settle=False)
        assert rtx.retransmits == 0
        assert rtx.outstanding == 1  # parked, not dropped

    def test_envelope_resumes_and_is_acked_after_restart(self):
        harness = self._build()
        rtx = harness.network.reliable
        harness.run(40.0, settle=False)
        harness.engine.run()
        assert rtx.outstanding == 0
        assert rtx.acked >= 1
        assert harness.metrics().violations == []
