"""Unit tests for simulation config and metrics formatting."""

import pytest

from repro.runtime.config import SimConfig
from repro.runtime.metrics import RunMetrics, format_table


class TestSimConfig:
    def test_defaults_valid(self):
        SimConfig().validate()

    def test_resolved_k_defaults_to_n(self):
        assert SimConfig(n=8).resolved_k() == 8
        assert SimConfig(n=8, k=3).resolved_k() == 3
        assert SimConfig(n=8, k=0).resolved_k() == 0

    def test_with_k_copies(self):
        base = SimConfig(n=8, seed=3)
        derived = base.with_k(2)
        assert derived.k == 2
        assert derived.seed == 3
        assert base.k is None

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SimConfig(n=0).validate()
        with pytest.raises(ValueError):
            SimConfig(k=-1).validate()
        with pytest.raises(ValueError):
            SimConfig(flush_interval=0).validate()
        with pytest.raises(ValueError):
            SimConfig(restart_delay=-1).validate()


class TestRunMetrics:
    def test_throughput(self):
        m = RunMetrics(duration=100.0, messages_delivered=250)
        assert m.throughput() == 2.5

    def test_throughput_zero_duration(self):
        assert RunMetrics().throughput() == 0.0

    def test_as_row_keys_stable(self):
        row = RunMetrics(n=4, k=2).as_row()
        assert row["n"] == 4
        assert row["K"] == 2
        assert "rollbacks" in row

    def test_format_table(self):
        rows = [RunMetrics(n=4, k=k).as_row() for k in (0, 4)]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "K" in lines[0]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"
