"""E1 — the paper's Figure 1, assertion by assertion.

Every quoted fact from Sections 2-3 is pinned here against the scripted
re-enactment in ``repro.experiments.figure1``.
"""

import pytest

from repro.core.entry import Entry
from repro.experiments.figure1 import figure1_async, figure1_koptimistic


@pytest.fixture(scope="module")
def async_result():
    return figure1_async()


@pytest.fixture(scope="module")
def kopt_result():
    return figure1_koptimistic()


class TestSection2Narrative:
    """The completely asynchronous protocol (multi-incarnation tracking)."""

    def test_p4_dependency_after_m2(self, async_result):
        # "it records dependency associated with (0,2)_4 as
        #  {(1,3)_0, (0,4)_1, (2,6)_3, (0,2)_4}"
        assert async_result.p4_after_m2 == {
            0: Entry(1, 3),
            1: Entry(0, 4),
            3: Entry(2, 6),
            4: Entry(0, 2),
        }

    def test_p4_dependency_after_m6(self, async_result):
        # "{(1,3)_0, (0,4)_1, (1,5)_1, (0,3)_2, (2,6)_3, (0,3)_4}"
        assert async_result.p4_after_m6 == {
            (0, 1): Entry(1, 3),
            (1, 0): Entry(0, 4),
            (1, 1): Entry(1, 5),
            (2, 0): Entry(0, 3),
            (3, 2): Entry(2, 6),
            (4, 0): Entry(0, 3),
        }

    def test_m6_not_delayed(self, async_result):
        assert async_result.m6_delayed_until_r1 is False

    def test_r1_contains_0_4(self, async_result):
        # "broadcast announcement r1 containing (0,4)_1"
        assert async_result.r1.origin == 1
        assert async_result.r1.end == Entry(0, 4)

    def test_p1_new_incarnation(self, async_result):
        # "rolls back to (0,4)_1, increments the incarnation number to 1"
        assert async_result.p1_restart_interval == Entry(1, 5)

    def test_p3_rolls_back_to_2_6(self, async_result):
        assert async_result.p3_rolled_back_to == Entry(2, 6)

    def test_p3_broadcasts_own_rollback(self, async_result):
        # Section 2's protocol announces every rollback.
        assert async_result.p3_broadcast_own_announcement is True

    def test_p4_does_not_roll_back(self, async_result):
        assert async_result.p4_rolled_back is False

    def test_orphan_m3_discarded(self, async_result):
        assert async_result.m3_discarded_as_orphan is True

    def test_p5_delivers_m7(self, async_result):
        assert async_result.p5_delivered_m7_without_r1 is True


class TestImprovedProtocol:
    """Theorems 1-2 + Corollary 1 applied (the K-optimistic base)."""

    def test_p4_dependency_after_m2(self, kopt_result):
        assert kopt_result.p4_after_m2 == {
            0: Entry(1, 3),
            1: Entry(0, 4),
            3: Entry(2, 6),
            4: Entry(0, 2),
        }

    def test_theorem2_drops_stable_entry(self, kopt_result):
        # After P3's notification that (2,6)_3 is stable, P4's vector no
        # longer carries the P3 entry.
        assert 3 not in kopt_result.p4_vector_after_p3_notification
        assert kopt_result.p4_vector_after_p3_notification[0] == Entry(1, 3)

    def test_m6_delayed_until_r1(self, kopt_result):
        # "P4 should delay the delivery of m6 until it receives r1."
        assert kopt_result.m6_delayed_until_r1 is True

    def test_lexicographic_max_after_r1(self, kopt_result):
        # "a lexicographical maximum operation is applied to (0,4) and
        #  (1,5) to update the entry to (1,5)."
        assert kopt_result.p4_after_m6[1] == Entry(1, 5)

    def test_p5_not_delayed_corollary_1(self, kopt_result):
        # "it can deliver m7 without waiting for r1 because it has no
        #  existing dependency entry for P1."
        assert kopt_result.p5_delivered_m7_without_r1 is True

    def test_p3_rolls_back_without_announcing(self, kopt_result):
        # Theorem 1: only failures are announced.
        assert kopt_result.p3_rolled_back_to == Entry(2, 6)
        assert kopt_result.p3_broadcast_own_announcement is False

    def test_p4_does_not_roll_back(self, kopt_result):
        assert kopt_result.p4_rolled_back is False

    def test_output_commit(self, kopt_result):
        # "P4 can commit the output sent from (0,2)_4 after it makes
        #  (0,2)_4 stable and also receives logging progress notifications
        #  from P0, P1 and P3."
        assert kopt_result.output_committed is True

    def test_r1_same_in_both_protocols(self, kopt_result, async_result):
        assert kopt_result.r1 == async_result.r1


class TestFigure1AcrossK:
    """The scripted scenario across degrees of optimism.

    The figure's messages carry up to three non-NULL entries, so the
    scenario's release timing requires K >= 3: with smaller K the sends
    would be held for stability — the *opposite* premise of this
    optimistic-logging example (low-K holding is covered by the send-buffer
    unit tests and the simulation experiments instead).
    """

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_scenario_invariants_hold(self, k):
        result = figure1_koptimistic(k=k)
        assert result.p4_after_m2[3] == Entry(2, 6)
        assert result.p3_rolled_back_to == Entry(2, 6)
        assert result.p4_rolled_back is False
        assert result.m6_delayed_until_r1 is True
