"""The paper's qualitative claims, measured (E3/E4/E5/E6 shapes).

We assert the *shape* of each tradeoff, not absolute numbers: who wins,
which direction a curve moves as K grows, and where the extremes land.
"""

import pytest

from repro.core.baselines import (
    fully_async_factory,
    pessimistic_factory,
    strom_yemini_factory,
)
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload

N = 6
DURATION = 800.0


def run(k=None, factory=None, failures=None, seed=42, fifo=False, n=N):
    config = SimConfig(n=n, k=k, seed=seed, fifo=fifo, trace_enabled=False)
    workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8)
    kwargs = {"protocol_factory": factory} if factory else {}
    harness = SimulationHarness(config, workload.behavior(),
                                failures=failures, **kwargs)
    workload.install(harness, until=DURATION * 0.8)
    harness.run(DURATION)
    return harness.metrics()


@pytest.fixture(scope="module")
def sweep():
    """One failure-free run per K (same seed => identical workload)."""
    return {k: run(k=k) for k in (0, 1, 2, 4, N)}


@pytest.fixture(scope="module")
def crash_sweep():
    """One run per K with a mid-run crash of process 1."""
    failures = FailureSchedule.single(DURATION / 2, 1)
    return {k: run(k=k, failures=failures) for k in (0, 1, 2, 4, N)}


class TestFailureFreeOverheadVsK:
    """E3: overhead falls as the degree of optimism rises."""

    def test_hold_time_decreases_with_k(self, sweep):
        holds = [sweep[k].mean_send_hold for k in (0, 1, 2, 4, N)]
        assert all(a >= b for a, b in zip(holds, holds[1:])), holds

    def test_kn_has_zero_hold(self, sweep):
        assert sweep[N].mean_send_hold == 0.0

    def test_k0_has_the_largest_hold(self, sweep):
        assert sweep[0].mean_send_hold > sweep[N].mean_send_hold
        assert sweep[0].mean_send_hold > 0.0

    def test_piggyback_size_grows_with_k(self, sweep):
        sizes = [sweep[k].mean_piggyback_entries for k in (0, 2, N)]
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sweep[0].mean_piggyback_entries == 0.0

    def test_piggyback_bounded_by_k(self, sweep):
        # Theorem 4's mechanism, verified at both the mean and the max: no
        # message ever leaves with more than K non-NULL entries.
        for k in (0, 1, 2, 4):
            assert sweep[k].max_piggyback_entries <= k
            assert sweep[k].mean_piggyback_entries <= k + 1e-9


class TestRecoveryCostVsK:
    """E4: rollback scope grows with the degree of optimism."""

    def test_k0_recovery_is_localized(self, crash_sweep):
        assert crash_sweep[0].processes_rolled_back == 0
        assert crash_sweep[0].intervals_undone == 0

    def test_kn_recovery_is_widest(self, crash_sweep):
        assert (crash_sweep[N].processes_rolled_back
                >= crash_sweep[0].processes_rolled_back)
        assert crash_sweep[N].intervals_undone >= crash_sweep[0].intervals_undone

    def test_rollback_scope_monotone_overall(self, crash_sweep):
        # Monotonicity holds between the extremes and roughly in between;
        # we assert the endpoints plus no-violation everywhere.
        for k, metrics in crash_sweep.items():
            assert metrics.violations == [], f"K={k}"

    def test_revoked_messages_bounded_by_k(self, crash_sweep):
        # Theorem 4 writ large: the oracle found no release with more than
        # K potential revokers in any run (violations list is empty) —
        # asserted per-K above; here: the K=N run actually exercised
        # rollbacks so the bound was not vacuous.
        assert crash_sweep[N].rollbacks > 0


class TestProtocolFamilyComparison:
    """E6: pessimistic vs K-optimistic vs S&Y vs fully-async."""

    @pytest.fixture(scope="class")
    def family(self):
        failures = FailureSchedule.single(DURATION / 2, 1)
        return {
            "pessimistic": run(k=0, factory=pessimistic_factory, failures=failures),
            "k0": run(k=0, failures=failures),
            "kn": run(k=N, failures=failures),
            "strom_yemini": run(factory=strom_yemini_factory, failures=failures,
                                fifo=True),
            "fully_async": run(factory=fully_async_factory, failures=failures),
        }

    def test_pessimistic_pays_sync_writes(self, family):
        # One sync write per delivery dwarfs everyone else's storage traffic.
        assert family["pessimistic"].sync_writes > 3 * family["kn"].sync_writes

    def test_pessimistic_recovery_localized(self, family):
        assert family["pessimistic"].processes_rolled_back == 0

    def test_optimistic_saves_writes_but_rolls_back(self, family):
        assert family["kn"].rollbacks > 0

    def test_commit_dependency_tracking_shrinks_vectors(self, family):
        # E5 headline: the improved protocol's vectors are strictly smaller
        # than Strom & Yemini's (which never nullifies).
        assert (family["kn"].mean_piggyback_entries
                < family["strom_yemini"].mean_piggyback_entries)

    def test_fully_async_vectors_largest(self, family):
        # Multi-incarnation tracking can exceed one entry per process.
        assert (family["fully_async"].mean_piggyback_entries
                > family["strom_yemini"].mean_piggyback_entries * 0.9)

    def test_all_protocols_consistent(self, family):
        for name, metrics in family.items():
            assert metrics.violations == [], name


class TestVectorSizeVsNotificationFrequency:
    """E5: more frequent logging-progress notifications => smaller vectors."""

    def test_notification_period_controls_vector_size(self):
        sizes = {}
        for period in (5.0, 40.0, 200.0):
            config = SimConfig(n=N, k=None, seed=42, notify_interval=period,
                               trace_enabled=False)
            workload = RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8)
            harness = SimulationHarness(config, workload.behavior())
            workload.install(harness, until=DURATION * 0.8)
            harness.run(DURATION)
            sizes[period] = harness.metrics().mean_piggyback_entries
        assert sizes[5.0] < sizes[40.0] < sizes[200.0], sizes
