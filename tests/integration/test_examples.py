"""The example scripts must stay runnable — they are the documentation."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "telecom_service",
    "scientific_pipeline",
    "tune_k",
    "custom_workload",
    "compare_families",
]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "invariant violations  : none" in out
        assert "space-time diagram" in out

    def test_custom_workload_runs(self, capsys):
        load_example("custom_workload").main()
        out = capsys.readouterr().out
        assert "divergent replicated keys     : 0" in out

    def test_scientific_pipeline_runs(self, capsys):
        load_example("scientific_pipeline").main()
        out = capsys.readouterr().out
        assert "optimistic logging saved" in out
