"""End-to-end recovery invariants: every workload x protocol x failure
schedule combination must preserve the paper's guarantees.

The oracle (ground truth, independent of the protocol's own tracking)
checks, for each run:

- **I2 / Theorem 4** — every released message had at most K potential
  revokers at release time;
- **I3 / Theorems 1-2** — at quiescence no surviving state interval
  depends on a rolled-back interval, and every committed output came from
  a non-orphan interval with an empty revoker set;
- **I6** — K=0 runs revoke nothing; K=N runs never hold a message.
"""

import pytest

from repro.core.baselines import (
    fully_async_factory,
    pessimistic_factory,
    strom_yemini_factory,
)
from repro.failures.injector import CrashEvent, FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.client_server import ClientServerWorkload
from repro.workloads.pipeline import PipelineWorkload
from repro.workloads.random_peers import RandomPeersWorkload
from repro.workloads.telecom import TelecomWorkload

WORKLOADS = {
    "random_peers": lambda: RandomPeersWorkload(rate=0.6),
    "client_server": lambda: ClientServerWorkload(rate=0.6),
    "pipeline": lambda: PipelineWorkload(rate=0.6),
    "telecom": lambda: TelecomWorkload(rate=0.6),
}

CRASHES = FailureSchedule([CrashEvent(120.0, 1), CrashEvent(260.0, 3)])


def run(workload_name, k=None, factory=None, failures=CRASHES, n=6, seed=3,
        duration=450.0, **config_kwargs):
    config = SimConfig(n=n, k=k, seed=seed, trace_enabled=False,
                       **config_kwargs)
    workload = WORKLOADS[workload_name]()
    kwargs = {"protocol_factory": factory} if factory else {}
    harness = SimulationHarness(config, workload.behavior(),
                                failures=failures, **kwargs)
    workload.install(harness, until=duration * 0.8)
    harness.run(duration)
    return harness


class TestKOptimisticInvariants:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("k", [0, 2, None])
    def test_no_violations_with_failures(self, workload, k):
        harness = run(workload, k=k)
        metrics = harness.metrics()
        assert metrics.crashes == 2
        assert metrics.violations == []
        assert metrics.messages_delivered > 0

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_failure_free_runs_clean(self, workload):
        harness = run(workload, failures=FailureSchedule.none())
        metrics = harness.metrics()
        assert metrics.rollbacks == 0
        assert metrics.orphans_discarded == 0
        assert metrics.violations == []


class TestBaselineInvariants:
    @pytest.mark.parametrize("name,factory,extra", [
        ("pessimistic", pessimistic_factory, {"k": 0}),
        ("strom_yemini", strom_yemini_factory, {"fifo": True}),
        ("fully_async", fully_async_factory, {}),
    ])
    def test_no_violations_with_failures(self, name, factory, extra):
        k = extra.pop("k", None)
        harness = run("random_peers", k=k, factory=factory, **extra)
        metrics = harness.metrics()
        assert metrics.crashes == 2
        assert metrics.violations == [], name

    def test_pessimistic_never_rolls_back_others(self):
        harness = run("random_peers", k=0, factory=pessimistic_factory)
        metrics = harness.metrics()
        assert metrics.rollbacks == 0
        assert metrics.intervals_undone == 0


class TestDegenerateKBehaviour:
    def test_k0_released_messages_never_revoked(self):
        # I6 first half: in a K=0 run no released message is ever discarded
        # as an orphan by a receiver.
        harness = run("random_peers", k=0)
        assert harness.metrics().violations == []
        # Orphan discards can only hit messages in *buffers* at rollback
        # time of the owner; network-released K=0 messages are immune.
        for host in harness.hosts:
            proto = host.protocol
            assert proto.stats.messages_released <= proto.stats.messages_enqueued

    def test_kn_never_holds_messages(self):
        # I6 second half: with K=N the send buffer never holds anything.
        harness = run("random_peers", k=None)
        for host in harness.hosts:
            assert host.protocol.stats.send_hold_time_total == 0.0

    def test_k0_localized_recovery(self):
        # A K=0 failure triggers no rollbacks at other processes.
        harness = run("random_peers", k=0)
        assert harness.metrics().processes_rolled_back == 0


class TestRecoveryProgress:
    def test_system_keeps_working_after_failures(self):
        # Deliveries continue after the last crash: recovery is not a
        # deadlock.
        harness = run("random_peers", k=None)
        last_crash = max(t for t, _ in harness.crash_events)
        deliveries_after = [
            e for e in harness.tracer.events  # tracer disabled: use stats
        ]
        metrics = harness.metrics()
        assert metrics.messages_delivered > 0
        assert not harness.hosts[1].down
        assert not harness.hosts[3].down

    def test_incarnations_advance_on_crash(self):
        harness = run("random_peers", k=None)
        assert harness.hosts[1].protocol.current.inc >= 1
        assert harness.hosts[3].protocol.current.inc >= 1

    def test_committed_outputs_survive(self):
        # I4: no committed output's interval was ever rolled back.
        harness = run("telecom", k=None)
        for _t, record in harness.committed_outputs:
            interval = (record.process, record.send_interval.inc,
                        record.send_interval.sii)
            if harness.oracle.exists(interval):
                assert not harness.oracle.node(interval).rolled_back
                assert not harness.oracle.is_orphan(interval)


class TestCrashStorm:
    def test_many_random_failures_stay_consistent(self):
        import random as random_module

        schedule = FailureSchedule.random(
            random_module.Random(123), n=6, horizon=350.0, rate=0.01,
            start=50.0,
        )
        assert len(schedule) >= 2
        harness = run("random_peers", k=3, failures=schedule,
                      duration=500.0, restart_delay=5.0)
        metrics = harness.metrics()
        assert metrics.violations == []
