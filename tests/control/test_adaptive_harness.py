"""The adaptive-K control loop wired through the simulation harness.

End-to-end guarantees: an adaptive run stays oracle-clean while K moves
(the per-message K path carries every decision, Theorem 2 keeps the
receivers correct), the loop is deterministic (same seed, same trace),
and the W-sharded engine observes the exact same K sequence as the
single-heap run.
"""

import dataclasses

from repro.oracle.ingest import certify_tracer
from repro.perf.scenarios import scenario_by_name

# Clamped to the 40-virtual-unit floor: both crash clusters (0.35-0.74
# of the duration) land inside the run, which is what moves K.
SCALE = 0.1


def run_adaptive(shards=1, dep_trace=False, seed=None):
    spec = scenario_by_name("adaptive_k")
    extra = {**spec.extra_config, "shards": shards, "dep_trace": dep_trace}
    spec = dataclasses.replace(spec, extra_config=extra,
                               seed=spec.seed if seed is None else seed)
    harness, duration = spec.build(scale=SCALE)
    try:
        harness.run(duration)
        metrics = harness.metrics()
        return {
            "metrics": metrics,
            "violations": metrics.violations,
            "histories": [list(host.controller.history)
                          for host in harness.hosts],
            "decisions": [[(d.time, d.k, d.reason)
                           for d in host.controller.decisions]
                          for host in harness.hosts],
            "outputs": sorted(
                (str(rec.output_id), rec.process, str(rec.payload))
                for _, rec in harness.committed_outputs
            ),
            "events": harness.engine.events_executed,
            "cert": (certify_tracer(harness.tracer, spec.n,
                                    harness.config.resolved_k())
                     if dep_trace else None),
        }
    finally:
        harness.close()


class TestAdaptiveRunEndToEnd:
    def test_certifies_clean_while_k_moves(self):
        run = run_adaptive(dep_trace=True)
        assert run["violations"] == []
        assert run["cert"].violations == []
        # Non-vacuity: the run must commit outputs AND actually retune K.
        assert run["outputs"]
        assert run["metrics"].adaptive_k
        assert run["metrics"].k_decisions > 0
        moved = {k for history in run["histories"] for _, k in history}
        assert len(moved) > 1, "controller never changed K"

    def test_crash_evidence_pulls_k_down(self):
        run = run_adaptive()
        # At least one process must have recorded a multiplicative
        # decrease triggered by the crash clusters.
        reasons = {reason for decisions in run["decisions"]
                   for _, _, reason in decisions}
        assert any(r.startswith("revocation") for r in reasons)

    def test_controller_metrics_are_populated(self):
        metrics = run_adaptive()["metrics"]
        assert 0.0 <= metrics.k_mean <= 8.0
        assert 0.0 <= metrics.k_final_mean <= 8.0
        assert metrics.output_latency_count > 0
        assert metrics.output_latency_p99 >= metrics.output_latency_p50
        assert 0.0 <= metrics.slo_attained <= 1.0


class TestAdaptiveDeterminism:
    def test_same_seed_same_k_sequence_and_outputs(self):
        a = run_adaptive()
        b = run_adaptive()
        assert a["histories"] == b["histories"]
        assert a["decisions"] == b["decisions"]
        assert a["outputs"] == b["outputs"]
        assert a["events"] == b["events"]

    def test_different_seed_different_trace(self):
        # Determinism must come from the seed, not from the controller
        # ignoring its inputs.
        a = run_adaptive()
        b = run_adaptive(seed=1234)
        assert a["outputs"] != b["outputs"]

    def test_sharded_run_observes_identical_k_sequence(self):
        reference = run_adaptive(shards=1)
        sharded = run_adaptive(shards=2)
        assert sharded["violations"] == []
        assert sharded["histories"] == reference["histories"]
        assert sharded["decisions"] == reference["decisions"]
        assert sharded["outputs"] == reference["outputs"]
        assert sharded["events"] == reference["events"]
