"""LatencyWindow and the degenerate-window-safe sample statistics.

The latency-accounting sweep's contract: mean, percentile and SLO
attainment are *total* functions — empty windows, single samples and
boundary percentiles are answers, not crashes.
"""

import pytest

from repro.control.slo import LatencyWindow
from repro.runtime.metrics import sample_mean, sample_percentile


class TestSampleHelpers:
    def test_mean_of_empty_is_zero(self):
        assert sample_mean([]) == 0.0

    def test_mean_of_single(self):
        assert sample_mean([7.5]) == 7.5

    def test_percentile_of_empty_is_zero(self):
        assert sample_percentile([], 99.0) == 0.0

    def test_percentile_of_single_is_the_sample(self):
        # Pre-fix this interpolated against a one-element range and the
        # p0/p100 boundary cases indexed out of the list.
        for q in (0.0, 50.0, 99.0, 100.0):
            assert sample_percentile([3.25], q) == 3.25

    def test_percentile_boundaries(self):
        samples = [4.0, 1.0, 3.0, 2.0]
        assert sample_percentile(samples, 0.0) == 1.0
        assert sample_percentile(samples, 100.0) == 4.0
        assert sample_percentile(samples, 50.0) == 2.5

    def test_percentile_interpolates(self):
        assert sample_percentile([0.0, 10.0], 25.0) == 2.5

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            sample_percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            sample_percentile([1.0], 100.5)

    def test_inputs_are_not_mutated(self):
        samples = [3.0, 1.0, 2.0]
        sample_percentile(samples, 50.0)
        assert samples == [3.0, 1.0, 2.0]


class TestLatencyWindow:
    def test_rejects_degenerate_maxlen(self):
        with pytest.raises(ValueError):
            LatencyWindow(0)

    def test_empty_window_statistics(self):
        window = LatencyWindow(8)
        assert window.count == 0
        assert window.mean() == 0.0
        assert window.percentile(99.0) == 0.0
        assert window.attainment(10.0) == 1.0

    def test_single_sample_statistics(self):
        window = LatencyWindow(8)
        window.add(4.0)
        assert window.mean() == 4.0
        assert window.percentile(50.0) == 4.0
        assert window.percentile(99.0) == 4.0

    def test_bounded_eviction(self):
        window = LatencyWindow(3)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert window.count == 3
        assert window.samples() == [2.0, 3.0, 4.0]
        assert window.mean() == 3.0

    def test_attainment_counts_at_or_under_target(self):
        window = LatencyWindow(8)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert window.attainment(2.0) == 0.5
        assert window.attainment(0.5) == 0.0
        # An unset target always reads as attained.
        assert window.attainment(0.0) == 1.0

    def test_clear(self):
        window = LatencyWindow(4)
        window.extend([1.0, 2.0])
        window.clear()
        assert window.count == 0
        assert len(window) == 0
        assert window.percentile(95.0) == 0.0
