"""AdaptiveKController unit tests: the AIMD rule, the decision trace,
config validation, and seed-determinism of exploration probes."""

import pytest

from repro.control import (AdaptiveKController, ControllerConfig, KDecision,
                           Observation)


def make(config=None, seed=0, pid=0):
    return AdaptiveKController(pid, config or ControllerConfig(k_max=8),
                               seed=seed)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        {"k_min": -1},
        {"k_min": 4, "k_max": 2},
        {"slo_percentile": 0.0},
        {"slo_percentile": 101.0},
        {"slo_target": -1.0},
        {"window": 0},
        {"increase_step": 0},
        {"decrease_factor": 1.0},
        {"decrease_factor": -0.1},
        {"explore_probability": 1.5},
    ])
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            make(ControllerConfig(**bad))

    def test_defaults_valid(self):
        ControllerConfig().validate()


class TestAimdRule:
    def test_starts_fully_optimistic(self):
        controller = make()
        assert controller.k == 8
        assert controller.recommend() == 8

    def test_multiplicative_decrease_on_revocation(self):
        controller = make()
        assert controller.observe(Observation(10.0, revocations=1)) == 4
        assert controller.observe(Observation(20.0, revocations=2)) == 2
        assert controller.observe(Observation(30.0, revocations=3)) == 1
        assert controller.observe(Observation(40.0, revocations=4)) == 0

    def test_decrease_respects_k_min(self):
        controller = make(ControllerConfig(k_min=2, k_max=8))
        controller.observe(Observation(10.0, revocations=1))
        controller.observe(Observation(20.0, revocations=2))
        controller.observe(Observation(30.0, revocations=3))
        assert controller.k == 2

    def test_revocations_are_diffed_not_reread(self):
        # A *cumulative* counter that stays flat is not new evidence.
        controller = make(ControllerConfig(k_max=8, slo_target=100.0))
        controller.observe(Observation(10.0, revocations=5))
        assert controller.k == 4
        controller.window.extend([1.0] * 8)  # healthy latency
        controller.observe(Observation(20.0, revocations=5))
        assert controller.k == 4  # hold, not another decrease

    def test_always_hungry_without_slo_target(self):
        controller = make(ControllerConfig(k_max=8, slo_target=0.0))
        controller.observe(Observation(10.0, revocations=2))
        assert controller.k == 4
        for tick in range(2, 8):
            controller.observe(Observation(tick * 10.0, revocations=2))
        assert controller.k == 8  # climbed back to the ceiling, additively

    def test_increase_under_latency_pressure(self):
        controller = make(ControllerConfig(k_max=8, slo_target=50.0))
        controller.observe(Observation(10.0, revocations=1))
        assert controller.k == 4
        # p99 over the window misses the 50.0 target -> climb.
        controller.observe(Observation(20.0, revocations=1,
                                       commit_waits=(80.0, 90.0, 120.0)))
        assert controller.k == 5

    def test_empty_window_reads_as_pressure(self):
        # Open loop: no commits at all is the worst possible latency.
        controller = make(ControllerConfig(k_max=8, slo_target=50.0))
        controller.observe(Observation(10.0, revocations=1))
        controller.observe(Observation(20.0, revocations=1))
        assert controller.k == 5

    def test_holds_when_healthy_and_slo_met(self):
        controller = make(ControllerConfig(k_max=8, slo_target=50.0))
        controller.observe(Observation(10.0, revocations=1,
                                       commit_waits=(5.0, 6.0, 7.0)))
        assert controller.k == 4
        controller.observe(Observation(20.0, revocations=1,
                                       commit_waits=(5.0,)))
        assert controller.k == 4

    def test_increase_respects_k_max(self):
        controller = make(ControllerConfig(k_max=3, slo_target=0.0))
        for tick in range(5):
            controller.observe(Observation(tick * 10.0, revocations=0))
        assert controller.k == 3


class TestDecisionTrace:
    def test_init_decision_is_recorded(self):
        controller = make()
        assert controller.decisions == [KDecision(0.0, 8, "init")]

    def test_decisions_record_changes_only(self):
        controller = make(ControllerConfig(k_max=8, slo_target=50.0))
        controller.observe(Observation(10.0, revocations=1,
                                       commit_waits=(1.0,)))
        controller.observe(Observation(20.0, revocations=1,
                                       commit_waits=(1.0,)))  # hold
        controller.observe(Observation(30.0, revocations=2,
                                       commit_waits=(1.0,)))
        reasons = [d.reason for d in controller.decisions]
        assert reasons == ["init", "revocation x1", "revocation x1"]
        # history records every tick, decisions only the two changes.
        assert len(controller.history) == 3

    def test_mean_k(self):
        controller = make(ControllerConfig(k_max=8, slo_target=100.0))
        assert controller.mean_k() == 8.0  # before any tick
        controller.observe(Observation(10.0, revocations=1,
                                       commit_waits=(1.0,)))  # -> 4
        controller.observe(Observation(20.0, revocations=2,
                                       commit_waits=(1.0,)))  # -> 2
        assert controller.mean_k() == 3.0


class TestExplorationDeterminism:
    CONFIG = ControllerConfig(k_max=8, slo_target=1000.0,
                              explore_probability=0.5)

    def _trajectory(self, seed, pid=3):
        controller = AdaptiveKController(pid, self.CONFIG, seed=seed)
        ks = []
        for tick in range(60):
            ks.append(controller.observe(
                Observation(tick * 5.0, revocations=tick // 17,
                            commit_waits=(1.0, 2.0))))
        return ks

    def test_same_seed_same_probes(self):
        assert self._trajectory(seed=9) == self._trajectory(seed=9)

    def test_probes_actually_fire(self):
        # SLO comfortably met, so every increase on this run is a probe.
        ks = self._trajectory(seed=9)
        assert any(b > a for a, b in zip(ks, ks[1:]))

    def test_streams_are_per_process(self):
        a = AdaptiveKController(0, self.CONFIG, seed=9)
        b = AdaptiveKController(1, self.CONFIG, seed=9)
        assert a._rng.random() != b._rng.random()
