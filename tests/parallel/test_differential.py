"""Differential suite: the epoch-parallel runner vs the serial engine.

The parallel runner's whole correctness claim is *bit-identical traces*:
for any scenario, running the W shard heaps on W worker processes must
produce exactly the dependency-trace stream (and event/delivery counts)
of ``ShardedEngine(W)`` serial execution — which itself must be
independent of W.  These tests pin that claim across the feature matrix
the runner has to survive: crashes (single and storms), fanout gossip,
delta notifications, the durable file-log backend, and the open-loop
workload with SLO accounting.

Each parallel trace is additionally replayed through the post-hoc
dependency oracle (:func:`repro.oracle.ingest.certify_events`) and must
certify with zero violations — the same bar the serial engine's inline
oracle enforces.
"""

from dataclasses import replace

import pytest

from repro.failures.injector import CrashEvent, FailureSchedule
from repro.oracle.ingest import certify_events
from repro.parallel import ParallelHarness, canonical_dep_events, render_jsonl
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.openloop import OpenLoopWorkload
from repro.workloads.random_peers import RandomPeersWorkload


def _peers(**kwargs):
    return lambda: RandomPeersWorkload(rate=2.0, **kwargs)


#: name -> (config, workload factory, failure schedule, duration)
CASES = {
    "base": (
        SimConfig(n=8, k=2, seed=11, dep_trace=True), _peers(),
        FailureSchedule.single(time=20.0, pid=3), 60.0),
    "storm": (
        SimConfig(n=12, k=3, seed=7, dep_trace=True),
        lambda: RandomPeersWorkload(rate=3.0),
        FailureSchedule([CrashEvent(15.0, 2), CrashEvent(22.5, 7),
                         CrashEvent(31.25, 4)]), 70.0),
    "fanout": (
        SimConfig(n=16, k=2, seed=3, notify_fanout=4, dep_trace=True),
        _peers(),
        FailureSchedule.single(time=25.0, pid=5), 60.0),
    "delta": (
        SimConfig(n=10, k=2, seed=5, delta_notifications=True,
                  dep_trace=True), _peers(),
        FailureSchedule.single(time=18.0, pid=1), 60.0),
    "filelog": (
        SimConfig(n=6, k=1, seed=9, storage_backend="filelog",
                  dep_trace=True), _peers(),
        FailureSchedule.single(time=20.0, pid=2), 50.0),
    "openloop": (
        SimConfig(n=8, k=2, seed=13, slo_output_latency=20.0,
                  dep_trace=True),
        lambda: OpenLoopWorkload(rate=2.0, output_fraction=0.5),
        FailureSchedule.single(time=20.0, pid=3), 60.0),
}

#: Serial single-shard reference per case, computed once per session.
_reference = {}


def _run_serial(name, shards):
    config, make_workload, failures, duration = CASES[name]
    workload = make_workload()
    harness = SimulationHarness(replace(config, shards=shards),
                                workload.behavior(), failures=failures)
    try:
        workload.install(harness, until=duration * 0.8)
        harness.run(duration)
        return (
            render_jsonl(canonical_dep_events(harness.tracer.events)),
            harness.engine.events_executed,
            harness.metrics().messages_delivered,
        )
    finally:
        harness.close()


def reference(name):
    if name not in _reference:
        ref = _run_serial(name, shards=1)
        # Bit-identical *empty* traces would prove nothing: every case
        # must actually exercise the dep.* emission path.
        assert ref[0], f"case {name!r} produced an empty dep trace"
        _reference[name] = ref
    return _reference[name]


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(CASES))
def test_serial_sharding_is_trace_invariant(name, shards):
    assert _run_serial(name, shards) == reference(name)


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("name", sorted(CASES))
def test_parallel_matches_serial_bit_identically(name, workers):
    config, make_workload, failures, duration = CASES[name]
    workload = make_workload()
    parallel_config = replace(config, parallel_workers=workers,
                              oracle_enabled=False, check_invariants=False)
    harness = ParallelHarness(parallel_config, workload.behavior(),
                              failures=failures, workload=workload,
                              install_until=duration * 0.8)
    try:
        harness.run(duration)
        dep = harness.dep_events()
        dump = render_jsonl(dep)
        ref_dump, ref_events, ref_delivered = reference(name)
        assert dump == ref_dump
        assert harness.engine.events_executed == ref_events
        assert harness.metrics().messages_delivered == ref_delivered

        # The parallel run must also stand on its own: replay its trace
        # through the post-hoc oracle and demand zero violations.
        events = [{"time": t, "category": c, "process": p, "data": d}
                  for t, c, p, d in canonical_dep_events(dep)]
        k = config.k if config.k is not None else config.n
        certification = certify_events(events, config.n, k)
        assert certification.violations == []
    finally:
        harness.close()
