"""Unit tests for the analysis helpers (stats + report rendering)."""

import pytest

from repro.analysis.report import ascii_series, markdown_table
from repro.analysis.stats import is_monotone, percentile, summarize


class TestSummarize:
    def test_single_value(self):
        s = summarize([4.0])
        assert s.mean == 4.0
        assert s.ci_low == s.ci_high == 4.0
        assert s.std == 0.0

    def test_mean_and_symmetric_ci(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == 3.0
        assert s.ci_low < 3.0 < s.ci_high
        assert abs((3.0 - s.ci_low) - (s.ci_high - 3.0)) < 1e-9

    def test_ci_narrows_with_more_samples(self):
        narrow = summarize([3.0 + 0.1 * i for i in range(50)])
        wide = summarize([3.0, 3.5, 2.5])
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "+/-" in str(summarize([1.0, 2.0]))


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_unsorted_input(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 100) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestIsMonotone:
    def test_increasing(self):
        assert is_monotone([1, 2, 2, 3])
        assert not is_monotone([1, 3, 2])

    def test_decreasing(self):
        assert is_monotone([3, 2, 2, 1], decreasing=True)
        assert not is_monotone([3, 1, 2], decreasing=True)

    def test_tolerance(self):
        assert is_monotone([1.0, 0.95, 1.5], tolerance=0.1)

    def test_trivial(self):
        assert is_monotone([])
        assert is_monotone([7])


class TestMarkdownTable:
    def test_renders_rows(self):
        text = markdown_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"
        assert len(lines) == 4

    def test_empty(self):
        assert markdown_table([]) == "*(no rows)*"


class TestAsciiSeries:
    def test_bars_proportional(self):
        text = ascii_series("hold", [0, 8], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_zero_values(self):
        text = ascii_series("x", ["a"], [0.0])
        assert "#" not in text.splitlines()[1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_series("x", [1, 2], [1.0])

    def test_empty(self):
        assert "(no data)" in ascii_series("x", [], [])
