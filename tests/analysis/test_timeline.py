"""Unit tests for the space-time diagram renderer."""

import pytest

from repro.analysis.timeline import TimelineRenderer, render_timeline
from repro.sim.trace import Tracer


def traced(events):
    tracer = Tracer()
    for time, category, pid, data in events:
        tracer.record(time, category, pid, **data)
    return tracer


class TestTimelineRenderer:
    def test_deliveries_rendered_per_process(self):
        tracer = traced([
            (10.0, "msg.deliver", 0, {"interval": "(0,2)"}),
            (20.0, "msg.deliver", 1, {"interval": "(0,3)"}),
        ])
        text = render_timeline(tracer, 2)
        lines = text.splitlines()
        assert "(0,2)" in lines[1]  # P0 row
        assert "(0,3)" in lines[2]  # P1 row

    def test_crash_beats_delivery_in_same_cell(self):
        tracer = traced([
            (10.0, "msg.deliver", 0, {"interval": "(0,2)"}),
            (10.1, "failure.crash", 0, {}),
        ])
        text = render_timeline(tracer, 1, width=14)  # few, wide cells
        assert "X" in text

    def test_restart_and_rollback_markers(self):
        tracer = traced([
            (10.0, "recovery.restart", 0, {"ann": "r[0: inc 0 ended at 4]"}),
            (20.0, "recovery.rollback", 1, {"to": "(0,2)"}),
        ])
        text = render_timeline(tracer, 2)
        assert "R0" in text
        assert "r(0,2)" in text

    def test_empty_trace(self):
        assert "no renderable events" in render_timeline(Tracer(), 2)

    def test_window_filtering(self):
        tracer = traced([
            (10.0, "msg.deliver", 0, {"interval": "(0,2)"}),
            (500.0, "msg.deliver", 0, {"interval": "(0,99)"}),
        ])
        text = render_timeline(tracer, 1, t_start=0.0, t_end=100.0)
        assert "(0,2)" in text
        assert "(0,99)" not in text

    def test_axis_labels(self):
        tracer = traced([(10.0, "msg.deliver", 0, {"interval": "(0,2)"})])
        text = render_timeline(tracer, 1, t_start=0.0, t_end=100.0)
        assert "t=0" in text.splitlines()[0]
        assert "t=100" in text.splitlines()[0]

    def test_legend_present(self):
        tracer = traced([(10.0, "msg.deliver", 0, {"interval": "(0,2)"})])
        assert "legend" in render_timeline(tracer, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineRenderer(0)
        with pytest.raises(ValueError):
            TimelineRenderer(2, width=3, cell=7)

    def test_renders_real_simulation(self):
        from repro.failures.injector import FailureSchedule
        from repro.runtime.config import SimConfig
        from repro.runtime.harness import SimulationHarness
        from repro.workloads.random_peers import RandomPeersWorkload

        config = SimConfig(n=3, seed=5)
        workload = RandomPeersWorkload(rate=0.3)
        harness = SimulationHarness(config, workload.behavior(),
                                    failures=FailureSchedule.single(60.0, 1))
        workload.install(harness, until=100.0)
        harness.run(140.0)
        text = render_timeline(harness.tracer, 3)
        assert "X" in text          # the crash is visible
        assert len(text.splitlines()) == 5  # axis + 3 rows + legend
