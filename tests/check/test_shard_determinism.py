"""Seed-determinism regression for the sharded engine.

Replaying the same seeded scenario must reproduce the *entire* trace —
including the ``dep.*`` dependency-event family the oracle certifies —
byte for byte, and the trace must not depend on the worker count.  A
sharded run that drifted from the single-heap schedule would show up
here first, before any protocol-level assertion fires.
"""

import filecmp

from repro.failures.injector import CrashEvent, FailureSchedule
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload

N = 8
K = 2
SEED = 11
DURATION = 60.0
CRASHES = ((20.0, 2), (35.0, 5))


def run_and_dump(path, shards):
    config = SimConfig(n=N, k=K, seed=SEED, shards=shards, dep_trace=True)
    workload = RandomPeersWorkload(rate=1.0)
    harness = SimulationHarness(
        config, workload.behavior(),
        failures=FailureSchedule([CrashEvent(t, pid) for t, pid in CRASHES]),
    )
    workload.install(harness, until=DURATION * 0.8)
    try:
        harness.run(DURATION)
        assert harness.metrics().violations == []
        harness.tracer.dump_jsonl(str(path))
    finally:
        harness.close()
    return path


class TestShardDeterminism:
    def test_w4_replay_is_byte_identical(self, tmp_path):
        first = run_and_dump(tmp_path / "w4_a.jsonl", shards=4)
        second = run_and_dump(tmp_path / "w4_b.jsonl", shards=4)
        assert first.read_bytes(), "trace dump is empty — nothing was tested"
        assert filecmp.cmp(first, second, shallow=False)

    def test_w4_trace_matches_single_heap_run(self, tmp_path):
        sharded = run_and_dump(tmp_path / "w4.jsonl", shards=4)
        baseline = run_and_dump(tmp_path / "w1.jsonl", shards=1)
        assert sharded.read_bytes() == baseline.read_bytes()

    def test_traces_carry_dep_events(self, tmp_path):
        path = run_and_dump(tmp_path / "w2.jsonl", shards=2)
        assert b'"dep.' in path.read_bytes()
