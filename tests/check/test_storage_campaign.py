"""Tests for the storage-fault campaign checker.

Covers the durability-violation detector itself (it must flag duplicate
and revoked committed outputs — the smoke campaigns are only as strong as
this check), tiny seeded smoke runs of both campaign styles, the
filelog-vs-model end-to-end equivalence under an identical crash
schedule, and the regression test for the rollback-replay duplicate
output-commit bug the campaign originally caught.
"""

import pytest

from repro.check.storage_campaign import (
    durability_violations,
    fault_campaign,
    fsync_sweep,
)
from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.core.output import OutputBuffer
from repro.failures.injector import CrashEvent, FailureSchedule
from repro.net.message import OutputRecord
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness
from repro.workloads.random_peers import RandomPeersWorkload


def run_small(backend="filelog", schedule=None, horizon=160.0, seed=7, k=2):
    workload = RandomPeersWorkload(rate=1.0)
    config = SimConfig(
        n=4, k=k, seed=seed,
        flush_interval=10.0, checkpoint_interval=40.0,
        storage_backend=backend,
    )
    harness = SimulationHarness(config, workload.behavior(),
                                failures=schedule or FailureSchedule.none())
    workload.install(harness, until=horizon - 60.0)
    harness.run(horizon)
    return harness


class TestDurabilityViolations:
    def test_clean_run_has_no_violations(self):
        harness = run_small()
        try:
            assert durability_violations(harness) == []
            assert harness.committed_outputs  # the check actually saw work
        finally:
            harness.close()

    def test_duplicate_commit_is_flagged(self):
        harness = run_small()
        try:
            time, record = harness.committed_outputs[0]
            harness.committed_outputs.append((time + 1.0, record))
            found = durability_violations(harness)
            assert any("more than once" in v for v in found)
        finally:
            harness.close()

    def test_unknown_interval_is_flagged(self):
        harness = run_small()
        try:
            harness.committed_outputs.append((999.0, OutputRecord(
                output_id="bogus", process=0, payload=None,
                send_interval=Entry(40, 4096))))
            found = durability_violations(harness)
            assert any("unknown interval" in v for v in found)
        finally:
            harness.close()

    def test_forgotten_stable_record_is_flagged(self):
        # If REDO replay lost the committed-output ledger entry, the
        # at-most-once guard is gone and the check must say so.
        harness = run_small()
        try:
            _, record = harness.committed_outputs[0]
            storage = harness.hosts[record.process].protocol.storage
            storage._committed_outputs.discard(record.output_id)
            storage._marker_cache = None
            found = durability_violations(harness)
            assert any("no longer recorded" in v for v in found)
        finally:
            harness.close()


class TestFaultCampaignSmoke:
    def test_tiny_campaign_is_clean_and_exercises_faults(self):
        result = fault_campaign(runs=2, seed=0, n=4, k=2, horizon=220.0)
        assert result.clean, result.summary()
        assert sum(r.recoveries for r in result.runs) >= 1
        assert sum(r.outputs_committed for r in result.runs) > 0
        assert "clean" in result.summary()

    def test_campaign_is_deterministic(self):
        a = fault_campaign(runs=1, seed=3, n=4, k=2, horizon=220.0)
        b = fault_campaign(runs=1, seed=3, n=4, k=2, horizon=220.0)
        assert [r.description for r in a.runs] == \
               [r.description for r in b.runs]
        assert [r.outputs_committed for r in a.runs] == \
               [r.outputs_committed for r in b.runs]


class TestFsyncSweepSmoke:
    def test_tiny_sweep_is_clean(self):
        result = fsync_sweep(seed=1, n=2, k=2, horizon=140.0, max_points=4)
        assert result.points, "sweep produced no boundary crashes"
        assert result.clean, result.summary()
        assert all(f > 0 for f in result.baseline_fsyncs)
        assert sum(p.recoveries for p in result.points) >= 1


class TestBackendEquivalence:
    def test_filelog_and_model_commit_identical_outputs(self):
        # Same seed, same crash schedule, both backends: the durable
        # backend must be behaviourally invisible — identical committed
        # output ids in identical order.
        schedule = [CrashEvent(60.0, 1), CrashEvent(95.0, 3)]
        ledgers = {}
        for backend in ("model", "filelog"):
            harness = run_small(backend=backend,
                                schedule=FailureSchedule(list(schedule)))
            try:
                assert durability_violations(harness) == []
                ledgers[backend] = [
                    record.output_id
                    for _, record in harness.committed_outputs
                ]
            finally:
                harness.close()
        assert ledgers["model"], "scenario committed no outputs"
        assert ledgers["filelog"] == ledgers["model"]


class TestRollbackReplayDedup:
    """Regression: rollback (unlike crash) keeps the volatile output
    buffer, so replaying the surviving prefix re-enqueued outputs that
    were still pending — and both copies eventually committed."""

    def test_output_buffer_contains_pending_ids(self):
        buffer = OutputBuffer()
        record = OutputRecord(output_id="o-1", process=0, payload=None,
                              send_interval=Entry(0, 3))
        assert not buffer.contains("o-1")
        buffer.add(record, DependencyVector(4), now=1.0)
        assert buffer.contains("o-1")
        assert not buffer.contains("o-2")
        buffer.discard_all()
        assert not buffer.contains("o-1")

    def test_enqueue_is_idempotent_for_pending_output(self):
        harness = run_small()
        try:
            protocol = harness.hosts[0].protocol
            before = len(protocol.output_buffer)
            # The output id is derived from (pid, interval, seq), so a
            # rollback replay re-presents the identical (payload, seq).
            protocol._enqueue_output("replayed", seq=987654)
            size = len(protocol.output_buffer)
            assert size == before + 1
            # Replay of the same output must not enqueue a second copy.
            protocol._enqueue_output("replayed", seq=987654)
            assert len(protocol.output_buffer) == size
        finally:
            harness.close()
