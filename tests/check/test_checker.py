"""Tests for the systematic exploration checker itself.

Covers the engine tie-breaker contract, scenario determinism and
serialization, the probe layer's silence on the real protocol, the
Theorem 4 regression sweep over K, and — the part that proves the whole
subsystem has teeth — the mutation smoke tests: against each broken
protocol variant the explorer must find a violation and the shrinker
must reduce it to a short replayable counterexample.
"""

import pytest

from repro.check import (
    BoundedDFSExplorer,
    ChoiceRecorder,
    Injection,
    MUTANTS,
    RandomExplorer,
    RandomScenarioSampler,
    Scenario,
    dump_counterexample,
    load_counterexample,
    mutant_factory,
    run_scenario,
    shrink,
)
from repro.check.cli import small_scenario
from repro.sim.engine import Engine, SimulationError


class TestTieBreakerHook:
    def test_default_behaviour_unchanged_without_chooser(self):
        fired = []
        a, b = Engine(), Engine()
        b.set_tie_breaker(lambda candidates: 0)
        for engine, tag in ((a, "a"), (b, "b")):
            for i in range(3):
                engine.schedule(1.0, lambda t=tag, i=i: fired.append((t, i)))
            engine.run()
        assert [i for t, i in fired if t == "a"] == \
               [i for t, i in fired if t == "b"]

    def test_chooser_reorders_same_time_events(self):
        engine = Engine()
        fired = []
        engine.set_tie_breaker(lambda candidates: len(candidates) - 1)
        for i in range(3):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [2, 1, 0]

    def test_chooser_sees_labels(self):
        engine = Engine()
        seen = []

        def chooser(candidates):
            seen.append(tuple(c.label for c in candidates))
            return 0

        engine.set_tie_breaker(chooser)
        engine.schedule(1.0, lambda: None, label="first")
        engine.schedule(1.0, lambda: None, label="second")
        engine.run()
        assert ("first", "second") in seen

    def test_out_of_range_choice_raises(self):
        engine = Engine()
        engine.set_tie_breaker(lambda candidates: 99)
        engine.schedule(1.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.run()

    def test_post_step_fires_after_every_event(self):
        engine = Engine()
        steps = []
        engine.post_step = lambda: steps.append(engine.events_executed)
        for _ in range(4):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert steps == [1, 2, 3, 4]


class TestChoiceRecorder:
    def test_prefix_then_default(self):
        recorder = ChoiceRecorder(prefix=[1, 0])
        fake = [object(), object(), object()]
        assert [recorder(fake), recorder(fake), recorder(fake)] == [1, 0, 0]
        assert recorder.taken == [1, 0, 0]
        assert recorder.counts == [3, 3, 3]

    def test_prefix_clamped_on_drift(self):
        recorder = ChoiceRecorder(prefix=[5])
        assert recorder([object(), object()]) == 1

    def test_seeded_fallback_is_reproducible(self):
        fake = [object()] * 4
        a = ChoiceRecorder(seed=7)
        b = ChoiceRecorder(seed=7)
        assert [a(fake) for _ in range(10)] == [b(fake) for _ in range(10)]


class TestScenarioRuns:
    def test_scenario_is_deterministic(self):
        scenario = small_scenario(n=3, tokens=3, crash=1)
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.choices == b.choices
        assert a.counts == b.counts
        assert a.events_executed == b.events_executed
        assert a.violations == b.violations == []

    def test_choices_change_the_schedule(self):
        scenario = small_scenario(n=2, tokens=3)
        base = run_scenario(scenario)
        branch = next((i for i, c in enumerate(base.counts) if c > 1), None)
        assert branch is not None, "lockstep scenario produced no ties"
        flipped = run_scenario(
            scenario.with_choices(base.choices[:branch] + [1]))
        assert flipped.violations == []
        assert flipped.choices != base.choices

    def test_serialization_round_trip(self, tmp_path):
        scenario = Scenario(
            n=4, k=2, seed=3, horizon=25.0,
            injections=[Injection(1.0, 0, token=1, hops=2,
                                  emit_output=True)],
            crashes=[(10.0, 2)],
            choices=[0, 1], choice_seed=99,
        )
        path = str(tmp_path / "scenario.json")
        scenario.dump(path)
        assert Scenario.load(path) == scenario

    def test_real_protocol_clean_with_crash_and_partition(self):
        from repro.check.scenario import Partition

        scenario = Scenario(
            n=4, k=1, seed=5, horizon=40.0,
            injections=[Injection(1.0 + i, i % 4, token=i, hops=2,
                                  emit_output=(i % 2 == 0))
                        for i in range(5)],
            crashes=[(18.0, 2)],
            partitions=[Partition(8.0, 14.0, ((3,),))],
            choice_seed=11,
        )
        result = run_scenario(scenario)
        assert result.violations == []


class TestTheorem4Sweep:
    """Regression for Theorem 4: under random schedules, every released
    message has at most K potential revokers — for every degree of
    optimism, including the K=0 (pessimistic) and K=N (fully optimistic)
    extremes."""

    @pytest.mark.parametrize("k", [0, 1, 2, None])
    def test_release_bound_holds_under_random_schedules(self, k):
        sampler = RandomScenarioSampler(seed=13, k_choices=(k,),
                                        n_choices=(3, 4))
        stats = RandomExplorer(sampler, runs=25).explore()
        assert not stats.found, stats.result.violations
        bound = 4 if k is None else k
        assert stats.max_release_revokers <= bound
        if k in (1, 2):
            # The optimism is actually exercised, not vacuously bounded.
            assert stats.max_release_revokers == k


class TestBoundedDFS:
    def test_tiny_config_explores_clean(self):
        scenario = small_scenario(n=2, tokens=2, horizon=20.0)
        stats = BoundedDFSExplorer(scenario, max_depth=5,
                                   max_runs=200).explore()
        assert not stats.found
        assert stats.runs > 10, "DFS found no schedule branching to explore"
        assert stats.max_branching >= 2

    def test_dfs_rejects_random_fallback(self):
        scenario = small_scenario().with_choices([], choice_seed=1)
        with pytest.raises(ValueError):
            BoundedDFSExplorer(scenario)


class TestMutationSmoke:
    """The checker must catch every broken variant and shrink the
    violation to a short replayable trace (the tentpole's acceptance
    bar: <= 20 events)."""

    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_caught_shrunk_and_replayable(self, name, tmp_path):
        factory = mutant_factory(name)
        sampler = RandomScenarioSampler(seed=0)
        stats = RandomExplorer(sampler, runs=60,
                               protocol_factory=factory).explore()
        assert stats.found, f"{name} not caught in {stats.runs} scenarios"

        shrunk = shrink(stats.counterexample, protocol_factory=factory)
        assert shrunk.result.violations
        assert shrunk.trace_length <= 20

        path = str(tmp_path / f"{name}.json")
        dump_counterexample(path, shrunk.scenario, shrunk.result,
                            mutant=name)
        loaded, loaded_mutant = load_counterexample(path)
        assert loaded_mutant == name
        replayed = run_scenario(loaded, mutant_factory(loaded_mutant))
        assert replayed.violations == shrunk.result.violations
        # The real protocol survives the same scenario.
        assert run_scenario(loaded).violations == []

    def test_orphan_blind_dfs_also_catches_with_crash(self):
        # The bounded DFS (not just random sampling) can expose the
        # orphan-blind mutant once a crash is in the scenario.
        scenario = small_scenario(n=3, k=1, tokens=4, horizon=30.0,
                                  crash=1)
        factory = mutant_factory("orphan_blind")
        stats = BoundedDFSExplorer(
            scenario, max_depth=6, max_runs=150,
            protocol_factory=factory).explore()
        sampled = RandomExplorer(
            RandomScenarioSampler(seed=2), runs=40,
            protocol_factory=factory).explore()
        assert stats.found or sampled.found

    def test_shrink_requires_a_violation(self):
        with pytest.raises(ValueError):
            shrink(small_scenario(n=2, tokens=2))


class TestShrinkQuality:
    def test_shrunk_scenario_is_small(self):
        factory = mutant_factory("unbounded_release")
        stats = RandomExplorer(RandomScenarioSampler(seed=0), runs=60,
                               protocol_factory=factory).explore()
        assert stats.found
        original = stats.counterexample
        shrunk = shrink(original, protocol_factory=factory)
        assert len(shrunk.scenario.injections) <= len(original.injections)
        assert len(shrunk.scenario.crashes) <= len(original.crashes)
        assert shrunk.scenario.horizon <= original.horizon
        assert len(shrunk.scenario.injections) <= 3


@pytest.mark.explore
class TestExtendedExploration:
    """The CI-scheduled long campaign: a 3-process bounded exploration
    plus a 1000-schedule random sample must complete clean."""

    def test_bounded_exploration_three_processes(self):
        scenario = small_scenario(n=3, k=1, tokens=3, horizon=30.0)
        stats = BoundedDFSExplorer(scenario, max_depth=9,
                                   max_runs=1500).explore()
        assert not stats.found, stats.result.violations

    def test_thousand_random_schedules_clean(self):
        sampler = RandomScenarioSampler(seed=0)
        stats = RandomExplorer(sampler, runs=1000).explore()
        assert not stats.found, stats.result.violations
