"""Differential test: simulation vs. the live multi-process backplane.

The same deterministic scenario — N=4, K=2, hop-chain application, the
same stimulus list, one crash of the same process — runs through (a) the
discrete-event simulation harness and (b) ``repro serve`` with real OS
processes, SIGKILL, and TCP.  Both must certify clean against the
dependency oracle and commit exactly the same output set: every stimulus
tag, exactly the agreement the shared :class:`EffectExecutor` and the
at-least-once delivery layer are supposed to provide.

The serve half spawns real subprocesses and takes a few seconds of wall
clock; it is the closest thing the suite has to a deployment test.
"""

import pytest

from repro.app.hopchain import HopChainBehavior
from repro.backplane.coordinator import ServePlan, run_serve
from repro.backplane.loadgen import generate_stimuli
from repro.failures.injector import FailureSchedule
from repro.oracle.ingest import certify_tracer
from repro.runtime.config import SimConfig
from repro.runtime.harness import SimulationHarness

N = 4
K = 2
SEED = 7
DURATION = 60.0
RATE = 0.5
CRASH_PID = 1
CRASH_TIME = DURATION * 0.4
RESTART_DELAY = 12.0


def _stimuli():
    # Crash victims are excluded as *entry points* (an injection into a
    # down process would be dropped nondeterministically); they still
    # participate as hop destinations and as the crash subject.
    return generate_stimuli(N, SEED, DURATION, RATE, exclude={CRASH_PID})


def _tags(cert):
    return {payload["tag"] for payload in cert.committed}


@pytest.fixture(scope="module")
def expected_tags():
    return {s["payload"]["tag"] for s in _stimuli()}


@pytest.fixture(scope="module")
def sim_cert():
    config = SimConfig(
        n=N, k=K, seed=SEED,
        ack_layer=True,
        retransmit_timeout=8.0,
        retransmit_window=64,
        dep_trace=True,
        check_invariants=True,
    )
    harness = SimulationHarness(
        config, HopChainBehavior(),
        failures=FailureSchedule.single(CRASH_TIME, CRASH_PID),
    )
    for stimulus in _stimuli():
        harness.inject_at(stimulus["time"], stimulus["dst"],
                          dict(stimulus["payload"]))
    harness.run(DURATION)
    assert harness.metrics().violations == []
    return certify_tracer(harness.tracer, N, K)


@pytest.fixture(scope="module")
def serve_report(tmp_path_factory):
    plan = ServePlan(
        n=N, k=K, seed=SEED,
        behavior="hopchain",
        timescale=0.02,
        duration=DURATION,
        rate=RATE,
        crashes=[(CRASH_TIME, CRASH_PID)],
        restart_delay=RESTART_DELAY,
        run_dir=str(tmp_path_factory.mktemp("serve-diff")),
        stimuli=_stimuli(),
    )
    return run_serve(plan)


class TestDifferential:
    def test_sim_certifies_clean(self, sim_cert):
        assert sim_cert.ok, sim_cert.violations

    def test_sim_commits_every_stimulus(self, sim_cert, expected_tags):
        assert _tags(sim_cert) == expected_tags

    def test_serve_certifies_clean(self, serve_report):
        assert serve_report.ok, serve_report.violations

    def test_serve_commits_every_stimulus(self, serve_report, expected_tags):
        assert _tags(serve_report.certification) == expected_tags

    def test_serve_really_crashed_and_recovered(self, serve_report):
        cert = serve_report.certification
        assert cert.counts["recoveries"] >= 1

    def test_same_committed_output_set(self, sim_cert, serve_report,
                                       expected_tags):
        # The headline agreement: both drivers commit exactly the same
        # outputs for the same scenario — all of them.
        assert _tags(sim_cert) == _tags(serve_report.certification) \
            == expected_tags
