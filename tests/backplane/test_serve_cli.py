"""End-to-end CLI tests: ``repro serve`` and ``repro load``.

These drive the real entry points as subprocesses — the same commands a
user types — including the external-load flow where a separate ``repro
load`` process connects to a running coordinator.
"""

import json
import os
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(*argv, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_env(), capture_output=True, text=True, timeout=timeout,
    )


class TestServeCli:
    def test_serve_with_crash_certifies_clean(self, tmp_path):
        run_dir = str(tmp_path / "run")
        result = _repro(
            "serve", "--n", "4", "--k", "2", "--duration", "40",
            "--rate", "0.5", "--timescale", "0.02", "--crash", "1",
            "--run-dir", run_dir,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "certified: no violations" in result.stdout
        report = json.load(open(os.path.join(run_dir, "report.json")))
        assert report["ok"] is True
        assert report["crashes"] == 1
        assert report["injected"] == 20
        # One JSONL trace per worker under trace/.
        traces = os.listdir(os.path.join(run_dir, "trace"))
        assert len([t for t in traces if t.endswith(".jsonl")]) == 4

    def test_crash_pid_out_of_range_rejected(self, tmp_path):
        result = _repro("serve", "--n", "2", "--crash", "5",
                        "--run-dir", str(tmp_path / "r"))
        assert result.returncode == 2

    def test_external_load_flow(self, tmp_path):
        run_dir = str(tmp_path / "run")
        # --rate 0: the coordinator idles until an external load client
        # connects (or the duration window passes).
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--n", "3",
             "--duration", "30", "--rate", "0", "--timescale", "0.02",
             "--run-dir", run_dir],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            manifest = os.path.join(run_dir, "run.json")
            deadline = time.monotonic() + 30
            while not os.path.exists(manifest):
                assert time.monotonic() < deadline, "serve never wrote run.json"
                assert serve.poll() is None, serve.communicate()[0]
                time.sleep(0.1)
            load = _repro("load", "--run-dir", run_dir,
                          "--duration", "30", "--rate", "0.4")
            assert load.returncode == 0, load.stdout + load.stderr
            assert "injected 12 stimuli" in load.stdout
            out, _ = serve.communicate(timeout=120)
        finally:
            if serve.poll() is None:
                serve.kill()
        assert serve.returncode == 0, out
        assert "certified: no violations" in out
        assert "injected:     12 stimuli" in out


@pytest.mark.parametrize("args", [
    ("load",),                      # neither --run-dir nor --port/--n
    ("load", "--port", "1"),        # missing --n
])
def test_load_requires_target(args):
    result = _repro(*args)
    assert result.returncode == 2
