"""Unit tests for the backplane wire layer: framing, codec, clock."""

import asyncio
import json

import pytest

from repro.backplane.clock import JsonlTracer, WallClock
from repro.backplane.codec import (
    CodecError,
    decode_app,
    decode_control,
    encode_app,
    encode_control,
)
from repro.backplane.framing import (
    MAX_FRAME,
    FramingError,
    encode_frame,
    read_frame,
)
from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.net.message import (
    AppAck,
    AppMessage,
    FailureAnnouncement,
    LoggingRequest,
    LogProgressNotification,
)
from repro.types import MessageId


def _drain(payloads):
    """Feed encoded frames through a StreamReader and read them back."""
    async def go():
        reader = asyncio.StreamReader()
        for payload in payloads:
            reader.feed_data(encode_frame(payload))
        reader.feed_eof()
        out = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return out
            out.append(frame)
    return asyncio.run(go())


class TestFraming:
    def test_round_trip_preserves_order_and_content(self):
        frames = [{"t": "hello", "pid": 3}, {"t": "cmd", "op": "flush"},
                  {"nested": {"deep": [1, 2, {"x": None}]}}]
        assert _drain(frames) == frames

    def test_clean_eof_returns_none(self):
        assert _drain([]) == []

    def test_mid_frame_eof_raises(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"a": 1})[:-2])
            reader.feed_eof()
            await read_frame(reader)
        with pytest.raises(FramingError):
            asyncio.run(go())

    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(FramingError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_undecodable_body_raises(self):
        async def go():
            import struct
            reader = asyncio.StreamReader()
            body = b"\xff\xfe not json"
            reader.feed_data(struct.pack(">I", len(body)) + body)
            reader.feed_eof()
            await read_frame(reader)
        with pytest.raises(FramingError):
            asyncio.run(go())


class TestCodec:
    def test_app_message_round_trip(self):
        tdv = DependencyVector(4)
        tdv.set(1, Entry(0, 3))
        tdv.set(3, Entry(1, 7))
        msg = AppMessage(
            msg_id=MessageId(2, 0, 5, 9),
            src=2, dst=1,
            payload={"tag": "t1", "hops": 2},
            tdv=tdv,
            send_interval=Entry(0, 5),
            replayed=True,
            k_limit=2,
        )
        decoded = decode_app(4, encode_app(msg))
        assert decoded.msg_id == msg.msg_id
        assert decoded.src == msg.src and decoded.dst == msg.dst
        assert decoded.payload == msg.payload
        assert decoded.send_interval == msg.send_interval
        assert decoded.replayed is True
        assert decoded.k_limit == 2
        assert decoded.tdv.as_dict() == msg.tdv.as_dict()

    def test_external_message_round_trip(self):
        msg = AppMessage(msg_id=MessageId(-1, 0, 0, 17), src=-1, dst=0,
                         payload={"tag": "t0", "hops": 1},
                         tdv=DependencyVector(4))
        decoded = decode_app(4, encode_app(msg))
        assert decoded.src == -1
        assert decoded.msg_id.seq == 17
        assert decoded.send_interval is None

    @pytest.mark.parametrize("payload", [
        FailureAnnouncement(2, Entry(1, 4)),
        LoggingRequest(3),
        AppAck(MessageId(1, 0, 2, 3), 2, 1),
        LogProgressNotification(0, [{0: 9}, {}, {1: 2}, {0: 4}]),
    ])
    def test_control_round_trip(self, payload):
        decoded = decode_control(encode_control(payload))
        assert type(decoded) is type(payload)
        assert decoded == payload

    def test_log_notification_int_keys_survive_json(self):
        notif = LogProgressNotification(1, [{0: 1, 1: 7}, {2: 5}])
        wire = json.loads(json.dumps(encode_control(notif)))
        decoded = decode_control(wire)
        assert decoded.table == [{0: 1, 1: 7}, {2: 5}]

    def test_unknown_control_kind_rejected(self):
        with pytest.raises(CodecError):
            decode_control({"kind": "mystery"})


class TestWallClock:
    def test_timescale_must_be_positive(self):
        with pytest.raises(ValueError):
            WallClock(None, timescale=0)

    def test_schedule_scales_delay(self):
        fired = []

        async def go():
            clock = WallClock(asyncio.get_running_loop(), timescale=0.01)
            clock.schedule(1.0, lambda: fired.append(clock.now))
            handle = clock.schedule(1.0, lambda: fired.append("cancelled"))
            handle.cancel()
            await asyncio.sleep(0.2)
        asyncio.run(go())
        assert len(fired) == 1
        assert fired[0] != "cancelled"


class TestJsonlTracer:
    def test_streams_and_survives_nonserializable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(path))
        tracer.record(1.0, "msg.release", 0, msg=MessageId(0, 0, 1, 2))
        tracer.record(2.0, "dep.stable", 0, inc=0, sii=4)
        # Records are durable immediately (flush per line), before close.
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        tracer.close()
        assert [line["category"] for line in lines] == \
            ["msg.release", "dep.stable"]
        assert lines[1]["data"] == {"inc": 0, "sii": 4}
        assert isinstance(lines[0]["data"]["msg"], str)
