"""Unit tests for post-hoc trace certification (repro.oracle.ingest).

Synthetic ``dep.*`` streams exercise each check in isolation: a clean
run, a Theorem-4 violation, an orphan commit, out-of-order delivery
edges (the timestamp-tie deferral), and damaged trace files.
"""

import json

from repro.oracle.ingest import (
    certify_events,
    certify_traces,
    load_trace_events,
)


def ev(time, category, pid, **data):
    return {"time": time, "category": category, "process": pid, "data": data}


def deliver(time, pid, inc, sii, src=-1, src_inc=None, src_sii=None):
    data = {"inc": inc, "sii": sii, "src": src}
    if src_inc is not None:
        data["src_inc"] = src_inc
        data["src_sii"] = src_sii
    return ev(time, "dep.deliver", pid, **data)


class TestCleanRuns:
    def test_empty_stream_is_clean(self):
        cert = certify_events([], n=3, k=1)
        assert cert.ok
        assert cert.committed == []

    def test_stable_chain_commit_is_clean(self):
        events = [
            deliver(1.0, 0, 0, 2),                       # external stimulus
            ev(2.0, "dep.release", 0, inc=0, sii=2, msg="m1", replayed=False),
            deliver(3.0, 1, 0, 2, src=0, src_inc=0, src_sii=2),
            ev(4.0, "dep.stable", 0, inc=0, sii=2),      # sender flushed
            ev(5.0, "dep.stable", 1, inc=0, sii=2),      # receiver flushed
            ev(6.0, "dep.commit", 1, inc=0, sii=2, output="o1",
               payload={"tag": "t1"}),
        ]
        cert = certify_events(events, n=2, k=1)
        assert cert.ok, cert.violations
        assert cert.committed == [{"tag": "t1"}]
        assert cert.counts["deliveries"] == 2

    def test_k_bound_release_within_k_is_clean(self):
        # One non-stable predecessor (the sender itself): fine for K=1.
        events = [
            deliver(1.0, 0, 0, 2),
            ev(2.0, "dep.release", 0, inc=0, sii=2, msg="m1", replayed=False),
        ]
        assert certify_events(events, n=2, k=1).ok


class TestViolations:
    def test_theorem4_violation_detected(self):
        # P0 and P1 both non-stable in the causal past, released with K=1.
        events = [
            deliver(1.0, 0, 0, 2),
            ev(2.0, "dep.release", 0, inc=0, sii=2, msg="m1", replayed=False),
            deliver(3.0, 1, 0, 2, src=0, src_inc=0, src_sii=2),
            ev(4.0, "dep.release", 1, inc=0, sii=2, msg="m2", replayed=False),
        ]
        cert = certify_events(events, n=3, k=1)
        assert not cert.ok
        assert any("Theorem 4" in v for v in cert.violations)
        # The same stream is clean for K=2.
        assert certify_events(events, n=3, k=2).ok

    def test_replayed_release_skips_the_bound(self):
        events = [
            deliver(1.0, 0, 0, 2),
            deliver(2.0, 0, 0, 3),
            ev(3.0, "dep.release", 0, inc=0, sii=3, msg="m1", replayed=True),
        ]
        assert certify_events(events, n=2, k=0).ok

    def test_commit_with_live_revokers_detected(self):
        events = [
            deliver(1.0, 0, 0, 2),
            ev(2.0, "dep.commit", 0, inc=0, sii=2, output="o1",
               payload={"tag": "t1"}),   # nothing stable yet
        ]
        cert = certify_events(events, n=2, k=1)
        assert any("live revokers" in v for v in cert.violations)

    def test_orphan_commit_detected(self):
        # P1's interval depends on P0's (0,2); P0 then fails back to (0,1)
        # and P1 neither rolls back nor avoids committing: orphan output
        # plus an inconsistent final state.
        events = [
            deliver(1.0, 0, 0, 2),
            deliver(2.0, 1, 0, 2, src=0, src_inc=0, src_sii=2),
            ev(3.0, "dep.recover", 0, s_inc=0, s_sii=1, n_inc=1, n_sii=2),
            ev(4.0, "dep.stable", 1, inc=0, sii=2),
            ev(5.0, "dep.commit", 1, inc=0, sii=2, output="o1",
               payload={"tag": "t1"}),
        ]
        cert = certify_events(events, n=2, k=2)
        assert any("orphan interval" in v for v in cert.violations)
        assert any("orphan" in v for v in cert.violations[-1:])  # consistency

    def test_rollback_then_clean_state_passes(self):
        # Same failure, but P1 rolls its orphan back: consistent again.
        events = [
            deliver(1.0, 0, 0, 2),
            deliver(2.0, 1, 0, 2, src=0, src_inc=0, src_sii=2),
            ev(3.0, "dep.recover", 0, s_inc=0, s_sii=1, n_inc=1, n_sii=2),
            ev(4.0, "dep.recover", 1, s_inc=0, s_sii=1, n_inc=1, n_sii=2),
        ]
        cert = certify_events(events, n=2, k=2)
        assert cert.ok, cert.violations


class TestDeferral:
    def test_tied_timestamps_defer_until_sender_registered(self):
        # The receiver's deliver sorts before the sender's (same stamp,
        # earlier file): the edge must still be recorded — prove it is by
        # catching the orphan it transmits.
        events = [
            deliver(1.0, 1, 0, 2, src=0, src_inc=0, src_sii=2),  # early tie
            deliver(1.0, 0, 0, 2),
            ev(2.0, "dep.recover", 0, s_inc=0, s_sii=1, n_inc=1, n_sii=2),
        ]
        cert = certify_events(events, n=2, k=2)
        assert cert.counts["deferred"] == 1
        assert cert.counts["deliveries"] == 2
        assert any("orphan" in v for v in cert.violations)

    def test_unresolvable_sender_interval_is_a_violation(self):
        events = [deliver(1.0, 1, 0, 2, src=0, src_inc=0, src_sii=9)]
        cert = certify_events(events, n=2, k=2)
        assert any("never appeared" in v for v in cert.violations)


class TestTraceFiles:
    def test_merge_sorts_by_time_and_skips_torn_tail(self, tmp_path):
        a = tmp_path / "p000.jsonl"
        b = tmp_path / "p001.jsonl"
        a.write_text(
            json.dumps(deliver(1.0, 0, 0, 2)) + "\n"
            + json.dumps(ev(4.0, "dep.stable", 0, inc=0, sii=2)) + "\n"
            + '{"time": 9.9, "category": "dep.sta'  # SIGKILL mid-write
        )
        b.write_text(
            json.dumps(deliver(3.0, 1, 0, 2, src=0, src_inc=0, src_sii=2))
            + "\n"
            + json.dumps(ev(5.0, "dep.stable", 1, inc=0, sii=2)) + "\n"
            + json.dumps(ev(6.0, "dep.commit", 1, inc=0, sii=2, output="o1",
                            payload={"tag": "t9"})) + "\n"
        )
        cert = certify_traces([str(a), str(b)], n=2, k=1)
        assert cert.ok, cert.violations
        assert cert.committed == [{"tag": "t9"}]
        assert cert.counts["skipped_lines"] == 1

    def test_non_dep_categories_are_ignored(self, tmp_path):
        path = tmp_path / "p000.jsonl"
        path.write_text(
            json.dumps(ev(1.0, "msg.release", 0, msg="x")) + "\n"
            + json.dumps(ev(2.0, "worker.start", 0)) + "\n"
        )
        cert = certify_traces([str(path)], n=1, k=1)
        assert cert.ok

    def test_invalid_process_id_is_a_violation(self):
        cert = certify_events([deliver(1.0, 7, 0, 2)], n=2, k=1)
        assert any("invalid process" in v for v in cert.violations)
