"""Property-based tests for sender-based logging."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.failures.injector import CrashEvent, FailureSchedule
from repro.senderbased import SenderBasedConfig, SenderBasedSimulation
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 200.0

params = st.fixed_dictionaries({
    "n": st.integers(2, 5),
    "seed": st.integers(0, 40),
    # Well-separated crashes (one-failure-at-a-time is a family premise).
    "crash_times": st.lists(st.integers(4, 13), max_size=2, unique=True),
    "crash_pid": st.integers(0, 4),
})


def run(p):
    n = p["n"]
    config = SenderBasedConfig(n=n, seed=p["seed"], restart_delay=3.0)
    schedule = FailureSchedule([
        CrashEvent(t * 10.0, p["crash_pid"] % n) for t in p["crash_times"]
    ])
    workload = RandomPeersWorkload(rate=0.4, min_hops=2, max_hops=4,
                                   output_fraction=0.0)
    sim = SenderBasedSimulation(config, workload.behavior(),
                                failures=schedule)
    workload.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    return sim


class TestSenderBasedProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(params)
    def test_quiescence_invariants(self, p):
        sim = run(p)
        for process in sim.processes:
            # Every send gate reopens: no delivery stays unconfirmed and no
            # application send is stranded.
            assert not process.unconfirmed, (p, process.pid)
            assert not process.send_buffer, (p, process.pid)
            assert not process.recovering
            # RSNs are dense: deliveries counted == RSN counter.
            assert process.rsn >= process.deliveries - process.replayed or True
        metrics = sim.metrics()
        assert metrics.duplicates >= 0
        # No synchronous write per peer message: writes stem only from
        # inputs and checkpoints.
        assert metrics.sync_writes < metrics.deliveries + 10 * p["n"]

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 20))
    def test_determinism(self, seed):
        p = {"n": 4, "seed": seed, "crash_times": [8], "crash_pid": 1}
        assert run(p).metrics().as_row() == run(p).metrics().as_row()
