"""Property-based tests for the checkpoint-only recovery family."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpointing import (
    UNCOORDINATED,
    CheckpointConfig,
    CheckpointSimulation,
)
from repro.failures.injector import CrashEvent, FailureSchedule
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 180.0

params = st.fixed_dictionaries({
    "n": st.integers(2, 5),
    "z": st.sampled_from([1, 2, 3, 8, UNCOORDINATED]),
    "seed": st.integers(0, 40),
    "crashes": st.lists(
        st.tuples(st.floats(30.0, 140.0), st.integers(0, 4)), max_size=3
    ),
})


def run(p):
    n = p["n"]
    config = CheckpointConfig(n=n, z=p["z"], seed=p["seed"])
    workload = RandomPeersWorkload(rate=0.4, min_hops=2, max_hops=4,
                                   output_fraction=0.0)
    schedule = FailureSchedule([CrashEvent(t, pid % n)
                                for t, pid in p["crashes"]])
    sim = CheckpointSimulation(config, workload.behavior(),
                               failures=schedule)
    workload.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    return sim


class TestCheckpointingProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params)
    def test_recovery_leaves_consistent_dependencies(self, p):
        """After all recoveries, no surviving epoch may depend on an epoch
        the last recovery cut away — i.e. recomputing the fixpoint for a
        hypothetical immediate re-crash of any process must only invalidate
        *that process's open epoch* plus states depending on it through
        still-live edges, never resurrect stale references."""
        sim = run(p)
        # Structural invariants per process.
        for process in sim.processes:
            closes = [c.closes for c in process.checkpoints]
            assert closes == sorted(closes)
            assert process.epoch == closes[-1] + 1
            # All recorded deps belong to epochs at or below the open one.
            for epoch, deps in process.epoch_deps.items():
                assert epoch <= process.epoch
                for src, src_epoch in deps:
                    assert 0 <= src < p["n"]
                    # A dependency may not point at an epoch that the
                    # source has rolled back (stale edges must have been
                    # cut with their owning epochs).
                    assert src_epoch <= sim.processes[src].epoch

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params)
    def test_work_accounting(self, p):
        sim = run(p)
        metrics = sim.metrics()
        assert metrics.work_lost >= 0
        assert metrics.deliveries >= 0
        if not p["crashes"]:
            assert metrics.work_lost == 0
            assert metrics.messages_discarded == 0

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 20))
    def test_determinism(self, seed):
        p = {"n": 4, "z": 2, "seed": seed, "crashes": [(80.0, 1)]}
        assert run(p).metrics().as_row() == run(p).metrics().as_row()
