"""Property-based tests on the protocol state machine.

Hypothesis drives one protocol instance through random event sequences
(receives, announcements, notifications, flushes, checkpoints, crashes)
and asserts structural invariants after every step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.app.behavior import EchoBehavior
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import LogProgressNotification
from helpers import make_announcement, make_msg

N = 4

entry_st = st.builds(Entry, inc=st.integers(0, 2), sii=st.integers(1, 15))

receive_op = st.tuples(
    st.just("receive"),
    st.integers(1, N - 1),                 # sender
    st.dictionaries(st.integers(1, N - 1), entry_st, max_size=N - 1),
)
announce_op = st.tuples(
    st.just("announce"),
    st.integers(1, N - 1),                 # origin
    st.integers(0, 2),                     # incarnation
    st.integers(1, 12),                    # end index
)
notify_op = st.tuples(
    st.just("notify"),
    st.integers(1, N - 1),
    st.integers(0, 2),
    st.integers(1, 15),
)
simple_op = st.sampled_from([("flush",), ("checkpoint",), ("crash",)])

ops = st.lists(st.one_of(receive_op, announce_op, notify_op, simple_op),
               max_size=40)


def apply_op(proc, op):
    kind = op[0]
    if kind == "receive":
        _, sender, entries = op
        entries = dict(entries)
        entries.setdefault(sender, Entry(0, 1))
        proc.on_receive(make_msg(sender, 0, n=N, entries=entries))
    elif kind == "announce":
        _, origin, inc, sii = op
        proc.on_failure_announcement(make_announcement(origin, inc, sii))
    elif kind == "notify":
        _, origin, inc, sii = op
        table = [{} for _ in range(N)]
        table[origin] = {inc: sii}
        proc.on_log_notification(LogProgressNotification(origin, table))
    elif kind == "flush":
        proc.flush()
    elif kind == "checkpoint":
        proc.checkpoint()
    elif kind == "crash":
        proc.crash()
        proc.restart()


def check_invariants(proc):
    # Interval indices never run backwards past the stable prefix, and the
    # incarnation never exceeds what storage could reconstruct + 1.
    assert proc.current.sii >= 1
    assert proc.current.inc >= 0
    # The own tdv entry, when present, is exactly the current interval.
    own = proc.tdv.get(proc.pid)
    assert own is None or own == proc.current
    # Dependencies the protocol knows to be stable are never carried.
    for pid, entry in proc.tdv.items():
        if pid != proc.pid:
            assert not proc.log.covers(pid, entry), (pid, entry)
    # Nothing in any buffer is a known orphan.
    for msg in proc.receive_buffer + proc.send_buffer:
        assert not proc._is_orphan_message(msg)
    # Volatile buffer positions are strictly increasing and beyond the log.
    positions = [r.position for r in proc.volatile.records]
    assert positions == sorted(set(positions))
    if positions:
        assert positions[0] > proc.storage.highest_logged_position()


class TestRandomOperationSequences:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops)
    def test_invariants_hold_throughout(self, operations):
        proc = KOptimisticProcess(0, N, 2, EchoBehavior())
        proc.initialize()
        for op in operations:
            apply_op(proc, op)
            check_invariants(proc)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops, st.integers(0, N))
    def test_released_messages_respect_k(self, operations, k):
        from repro.core.effects import ReleaseMessage

        class Chatty(EchoBehavior):
            def on_message(self, state, payload, ctx):
                state = super().on_message(state, payload, ctx)
                ctx.send((ctx.pid + 1) % N, {"reply": True})
                return state

        proc = KOptimisticProcess(0, N, k, Chatty())
        proc.initialize()
        for op in operations:
            effects = []
            try:
                kind = op[0]
                if kind == "receive":
                    _, sender, entries = op
                    entries = dict(entries)
                    entries.setdefault(sender, Entry(0, 1))
                    effects = proc.on_receive(
                        make_msg(sender, 0, n=N, entries=entries))
                elif kind == "announce":
                    effects = proc.on_failure_announcement(
                        make_announcement(op[1], op[2], op[3]))
                elif kind == "notify":
                    table = [{} for _ in range(N)]
                    table[op[1]] = {op[2]: op[3]}
                    effects = proc.on_log_notification(
                        LogProgressNotification(op[1], table))
                elif kind == "flush":
                    effects = proc.flush()
                elif kind == "checkpoint":
                    effects = proc.checkpoint()
                elif kind == "crash":
                    proc.crash()
                    effects = proc.restart()
            finally:
                for effect in effects:
                    if isinstance(effect, ReleaseMessage):
                        assert effect.message.tdv.non_null_count() <= k

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops)
    def test_crash_replay_reaches_stable_prefix(self, operations):
        proc = KOptimisticProcess(0, N, N, EchoBehavior())
        proc.initialize()
        for op in operations:
            apply_op(proc, op)
        stable_count = proc.storage.log_size
        delivered_before = proc.app_state["delivered"]
        volatile = len(proc.volatile)
        orphans_before = proc.stats.orphans_discarded
        requeued_before = proc.stats.messages_requeued
        proc.crash()
        proc.restart()
        # Everything logged survives *unless recovery legitimately sets it
        # aside*: replay stops at the first logged message the announcement
        # tables mark as an orphan (stability and orphanhood are orthogonal
        # — a stable interval can still be lost), discarding orphans and
        # requeueing the non-orphan remainder for ordinary re-delivery.
        # Everything volatile is gone.
        discarded = proc.stats.orphans_discarded - orphans_before
        requeued = proc.stats.messages_requeued - requeued_before
        assert (proc.app_state["delivered"]
                >= delivered_before - volatile - discarded - requeued)
        assert len(proc.volatile) == 0
