"""Property tests for the unreliable-network fault model.

Two contracts the simulator's determinism story rests on:

- the fault pattern is a pure function of the seed and the per-channel
  stream names: the same seed reproduces the exact drop/duplicate/reorder
  decisions on every channel, independent of evaluation order across
  channels;
- the fault-free path draws **zero** RNG: attaching a fault model with
  all rates at zero perturbs nothing (so enabling the fault machinery
  cannot change a reliable run's schedule).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.faults import ChannelFaults, FaultDecision, NetworkFaultModel
from repro.sim.rng import RngRegistry

rates = st.floats(0.05, 0.9)
seeds = st.integers(0, 2 ** 32 - 1)


def decisions(model, pairs, control=False, per_pair=20):
    return {
        (src, dst): [model.decide(src, dst, control) for _ in range(per_pair)]
        for src, dst in pairs
    }


class TestSeedDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, drop=rates, duplicate=rates, reorder=rates)
    def test_same_seed_identical_decisions_per_channel(
        self, seed, drop, duplicate, reorder
    ):
        faults = ChannelFaults(drop=drop, duplicate=duplicate, reorder=reorder)
        pairs = [(0, 1), (1, 0), (2, 3), (0, 3)]
        a = decisions(NetworkFaultModel(RngRegistry(seed), faults), pairs)
        b = decisions(NetworkFaultModel(RngRegistry(seed), faults), pairs)
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, drop=rates)
    def test_channel_streams_are_independent_of_order(self, seed, drop):
        # Interleaving decisions across channels must not change any
        # channel's own sequence: each channel draws from its own stream.
        faults = ChannelFaults(drop=drop)
        pairs = [(0, 1), (1, 0)]
        sequential = decisions(
            NetworkFaultModel(RngRegistry(seed), faults), pairs, per_pair=10)
        interleaved_model = NetworkFaultModel(RngRegistry(seed), faults)
        interleaved = {pair: [] for pair in pairs}
        for _ in range(10):
            for pair in pairs:
                interleaved[pair].append(
                    interleaved_model.decide(pair[0], pair[1], False))
        assert sequential == interleaved

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_app_and_control_streams_are_distinct(self, seed):
        # The stream name includes the traffic class, so app and control
        # decisions on the same channel never share draws.
        registry = RngRegistry(seed)
        app = [registry.fresh("faults/0->1/app").random() for _ in range(5)]
        ctl = [registry.fresh("faults/0->1/ctl").random() for _ in range(5)]
        assert app != ctl


class TestFaultFreePathDrawsNoRng:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_zero_rates_never_touch_streams(self, seed):
        registry = RngRegistry(seed)
        model = NetworkFaultModel(registry, ChannelFaults())
        for _ in range(25):
            for src, dst in ((0, 1), (1, 2), (2, 0)):
                assert model.decide(src, dst, False) == FaultDecision()
                assert model.decide(src, dst, True) == FaultDecision()
        # The per-channel fault streams were never advanced: their next
        # draw is still a fresh stream's first draw.
        for src, dst in ((0, 1), (1, 2), (2, 0)):
            for kind in ("app", "ctl"):
                name = f"faults/{src}->{dst}/{kind}"
                assert (registry.stream(name).random()
                        == registry.fresh(name).random())

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_partition_drop_draws_no_rng(self, seed):
        registry = RngRegistry(seed)
        model = NetworkFaultModel(registry,
                                  ChannelFaults(drop=0.5, duplicate=0.5))
        model.start_partition(((0,),), now=1.0)
        for _ in range(25):
            decision = model.decide(0, 1, False)
            assert decision.drop and decision.partition_drop
        model.heal(now=2.0)
        # Partitioned transmissions short-circuit before the stream; the
        # first post-heal decision matches a fresh model's first decision.
        after = model.decide(0, 1, False)
        fresh = NetworkFaultModel(RngRegistry(seed),
                                  ChannelFaults(drop=0.5, duplicate=0.5))
        assert after == fresh.decide(0, 1, False)
