"""Property-based end-to-end runs: hypothesis chooses the topology, the
degree of optimism, and the crash schedule; the oracle must stay silent.

This is the strongest correctness net in the suite: arbitrary (small)
configurations with arbitrary multi-crash schedules, checked for Theorem 4
on every release and global consistency at quiescence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.failures.injector import CrashEvent, FailureSchedule
from repro.workloads.random_peers import RandomPeersWorkload

from helpers import build_sim

DURATION = 220.0

configs = st.fixed_dictionaries({
    "n": st.integers(2, 5),
    "seed": st.integers(0, 50),
    "k": st.one_of(st.none(), st.integers(0, 5)),
    "crashes": st.lists(
        st.tuples(st.floats(30.0, 170.0), st.integers(0, 4)),
        max_size=3,
    ),
    "flush_interval": st.sampled_from([15.0, 40.0]),
    "notify_interval": st.sampled_from([10.0, 30.0]),
})


def run_config(params):
    n = params["n"]
    crashes = [CrashEvent(t, pid % n) for t, pid in params["crashes"]]
    harness = build_sim(
        n=n,
        k=min(params["k"], n) if params["k"] is not None else None,
        seed=params["seed"],
        failures=FailureSchedule(crashes),
        workload=RandomPeersWorkload(rate=0.4, min_hops=2, max_hops=4),
        until=DURATION * 0.8,
        flush_interval=params["flush_interval"],
        notify_interval=params["notify_interval"],
        trace_enabled=False,
    )
    harness.run(DURATION)
    return harness


class TestRandomDeployments:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(configs)
    def test_invariants_hold(self, params):
        harness = run_config(params)
        metrics = harness.metrics()
        assert metrics.violations == [], params
        # Everyone is back up and working after the storm.
        assert not any(host.down for host in harness.hosts)
        # Dedup worked: each delivered message id was delivered at most
        # once per live incarnation chain (the oracle's chains contain no
        # rolled-back nodes).
        assert harness.oracle.check_consistency() == []

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 30))
    def test_determinism_across_identical_runs(self, seed):
        params = {
            "n": 4, "seed": seed, "k": 2,
            "crashes": [(90.0, 1)],
            "flush_interval": 40.0, "notify_interval": 10.0,
        }
        a = run_config(params).metrics().as_row()
        b = run_config(params).metrics().as_row()
        assert a == b
