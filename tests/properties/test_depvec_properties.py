"""Property-based tests: dependency vectors and the two table types."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.depvec import DependencyVector
from repro.core.entry import Entry, lex_max
from repro.core.tables import IncarnationEndTable, LoggingProgressTable

N = 5

entries = st.builds(Entry, inc=st.integers(0, 4), sii=st.integers(1, 30))
entry_maps = st.dictionaries(st.integers(0, N - 1), entries, max_size=N)


def vec(mapping):
    return DependencyVector(N, mapping)


class TestMergeProperties:
    @given(entry_maps, entry_maps)
    def test_merge_commutative(self, a, b):
        left = vec(a)
        left.merge(vec(b))
        right = vec(b)
        right.merge(vec(a))
        assert left == right

    @given(entry_maps, entry_maps, entry_maps)
    def test_merge_associative(self, a, b, c):
        ab_c = vec(a)
        ab_c.merge(vec(b))
        ab_c.merge(vec(c))
        bc = vec(b)
        bc.merge(vec(c))
        a_bc = vec(a)
        a_bc.merge(bc)
        assert ab_c == a_bc

    @given(entry_maps)
    def test_merge_idempotent(self, a):
        v = vec(a)
        v.merge(vec(a))
        assert v == vec(a)

    @given(entry_maps, entry_maps)
    def test_merge_pointwise_max(self, a, b):
        v = vec(a)
        v.merge(vec(b))
        for pid in range(N):
            assert v.get(pid) == lex_max(a.get(pid), b.get(pid))

    @given(entry_maps, entry_maps)
    def test_merge_monotone(self, a, b):
        # Merging never loses or shrinks an entry.
        v = vec(a)
        v.merge(vec(b))
        for pid, entry in a.items():
            assert v.get(pid) >= entry

    @given(entry_maps)
    def test_size_bounded_by_n(self, a):
        assert vec(a).non_null_count() <= N


class TestCopyProperties:
    @given(entry_maps)
    def test_copy_equal_but_independent(self, a):
        v = vec(a)
        c = v.copy()
        assert c == v
        c.set(0, Entry(9, 999))
        if a.get(0) != Entry(9, 999):
            assert v != c


class TestTableProperties:
    @given(st.lists(st.tuples(st.integers(0, N - 1), entries), max_size=20))
    def test_insert_order_irrelevant(self, inserts):
        a = LoggingProgressTable(N)
        b = LoggingProgressTable(N)
        for pid, entry in inserts:
            a.insert(pid, entry)
        for pid, entry in reversed(inserts):
            b.insert(pid, entry)
        assert a.snapshot() == b.snapshot()

    @given(st.lists(st.tuples(st.integers(0, N - 1), entries), max_size=20),
           st.integers(0, N - 1), entries)
    def test_covers_monotone_under_inserts(self, inserts, pid, probe):
        log = LoggingProgressTable(N)
        covered_before = False
        for insert_pid, entry in inserts:
            if covered_before:
                assert log.covers(pid, probe)
            covered_before = log.covers(pid, probe)
            log.insert(insert_pid, entry)
        # covers never flips back to False once True.

    @given(st.lists(st.tuples(st.integers(0, N - 1), entries), max_size=20),
           st.integers(0, N - 1), entries)
    def test_invalidates_monotone_under_inserts(self, inserts, pid, probe):
        # An incarnation ends exactly once, so a real execution never
        # inserts two *different* end indices for the same (pid, inc);
        # deduplicate the generated inserts accordingly (duplicates of the
        # same announcement are fine and exercised).
        seen = {}
        for insert_pid, entry in inserts:
            seen.setdefault((insert_pid, entry.inc), entry)
        iet = IncarnationEndTable(N)
        was_invalid = False
        for (insert_pid, _inc), entry in seen.items():
            iet.insert(insert_pid, entry)
            iet.insert(insert_pid, entry)  # duplicate announcement
            invalid_now = iet.invalidates(pid, probe)
            assert invalid_now or not was_invalid
            was_invalid = invalid_now

    @given(st.lists(st.tuples(st.integers(0, N - 1), entries), max_size=20))
    def test_merge_snapshot_equals_inserts(self, inserts):
        direct = LoggingProgressTable(N)
        for pid, entry in inserts:
            direct.insert(pid, entry)
        merged = LoggingProgressTable(N)
        merged.merge_snapshot(direct.snapshot())
        assert merged.snapshot() == direct.snapshot()

    @given(st.integers(0, N - 1), entries, entries)
    def test_covers_and_invalidates_disjoint_same_incarnation(self, pid, end, probe):
        # For a single iet/log entry pair derived from one announcement,
        # a dependency cannot be both covered (stable) and invalidated.
        log = LoggingProgressTable(N)
        iet = IncarnationEndTable(N)
        log.insert(pid, end)
        iet.insert(pid, end)
        if probe.inc == end.inc:
            assert not (log.covers(pid, probe) and iet.invalidates(pid, probe))
