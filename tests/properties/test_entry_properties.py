"""Property-based tests: entries and NULL-aware lexicographic operations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.entry import Entry, lex_max, lex_min

entries = st.builds(Entry, inc=st.integers(0, 10), sii=st.integers(1, 100))
opt_entries = st.one_of(st.none(), entries)


class TestLexMaxProperties:
    @given(opt_entries, opt_entries)
    def test_commutative(self, a, b):
        assert lex_max(a, b) == lex_max(b, a)

    @given(opt_entries, opt_entries, opt_entries)
    def test_associative(self, a, b, c):
        assert lex_max(lex_max(a, b), c) == lex_max(a, lex_max(b, c))

    @given(opt_entries)
    def test_idempotent(self, a):
        assert lex_max(a, a) == a

    @given(opt_entries)
    def test_null_is_identity(self, a):
        assert lex_max(a, None) == a

    @given(entries, entries)
    def test_result_dominates_both(self, a, b):
        m = lex_max(a, b)
        assert m >= a and m >= b
        assert m in (a, b)


class TestLexMinProperties:
    @given(opt_entries, opt_entries)
    def test_commutative(self, a, b):
        assert lex_min(a, b) == lex_min(b, a)

    @given(opt_entries)
    def test_null_is_absorbing(self, a):
        assert lex_min(a, None) is None

    @given(entries, entries)
    def test_result_dominated_by_both(self, a, b):
        m = lex_min(a, b)
        assert m <= a and m <= b
        assert m in (a, b)

    @given(entries, entries)
    def test_min_max_partition(self, a, b):
        assert {lex_min(a, b), lex_max(a, b)} == {a, b}


class TestOrderingProperties:
    @given(entries, entries)
    def test_total_order(self, a, b):
        assert (a < b) or (b < a) or (a == b)

    @given(entries, entries, entries)
    def test_transitive(self, a, b, c):
        if a <= b <= c:
            assert a <= c

    @given(entries)
    def test_successors_strictly_increase(self, a):
        assert a.next_interval() > a
        assert a.next_incarnation() > a
        assert a.next_incarnation() > a.next_interval()
