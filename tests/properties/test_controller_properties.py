"""Property-based tests: the adaptive-K controller is a pure function of
``(seed, observation stream)``.

This purity is what makes adaptive runs replayable: the harness feeds
observations on deterministic engine timers, so bit-identical decision
traces here imply bit-identical simulations there (the W-sharded
differential in tests/control/test_adaptive_harness.py closes the loop).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.control import AdaptiveKController, ControllerConfig, Observation

configs = st.builds(
    ControllerConfig,
    k_min=st.integers(0, 2),
    k_max=st.integers(2, 12),
    slo_target=st.sampled_from([0.0, 10.0, 50.0]),
    slo_percentile=st.sampled_from([50.0, 95.0, 99.0]),
    window=st.integers(1, 64),
    increase_step=st.integers(1, 3),
    decrease_factor=st.sampled_from([0.0, 0.25, 0.5, 0.75]),
    explore_probability=st.sampled_from([0.0, 0.3, 1.0]),
)

# Cumulative revocation counters: nondecreasing by construction.
deltas = st.lists(st.integers(0, 3), min_size=1, max_size=40)
waits = st.lists(
    st.lists(st.floats(0.0, 200.0, allow_nan=False), max_size=5),
    min_size=1, max_size=40,
)


def stream(revocation_deltas, wait_batches):
    """Build a well-formed observation stream from raw draws."""
    observations, total = [], 0
    for i, delta in enumerate(revocation_deltas):
        total += delta
        batch = wait_batches[i % len(wait_batches)]
        observations.append(
            Observation(time=float(i) * 5.0, revocations=total,
                        commit_waits=tuple(batch))
        )
    return observations


def trajectory(config, seed, pid, observations):
    controller = AdaptiveKController(pid, config, seed=seed)
    ks = [controller.observe(o) for o in observations]
    return ks, list(controller.decisions), list(controller.history)


class TestControllerPurity:
    @given(configs, st.integers(0, 2**32), st.integers(0, 7), deltas, waits)
    def test_same_inputs_bit_identical_trace(self, config, seed, pid,
                                             revs, wait_batches):
        observations = stream(revs, wait_batches)
        first = trajectory(config, seed, pid, observations)
        second = trajectory(config, seed, pid, observations)
        assert first == second

    @given(configs, st.integers(0, 2**32), st.integers(0, 7), deltas, waits)
    def test_k_always_within_bounds(self, config, seed, pid,
                                    revs, wait_batches):
        ks, _, _ = trajectory(config, seed, pid, stream(revs, wait_batches))
        assert all(config.k_min <= k <= config.k_max for k in ks)

    @given(configs, st.integers(0, 2**32), st.integers(0, 7), deltas, waits)
    def test_history_matches_returned_ks(self, config, seed, pid,
                                         revs, wait_batches):
        observations = stream(revs, wait_batches)
        ks, decisions, history = trajectory(config, seed, pid, observations)
        assert [k for _, k in history] == ks
        assert [t for t, _ in history] == [o.time for o in observations]
        # The decision trace is the change-compressed history (plus init).
        assert decisions[0].reason == "init"
        replayed, current = [], decisions[0].k
        for t, k in history:
            if k != current:
                replayed.append((t, k))
                current = k
        assert [(d.time, d.k) for d in decisions[1:]] == replayed

    @given(configs, st.integers(0, 2**32), deltas, waits)
    def test_fresh_revocation_evidence_never_raises_k(self, config, seed,
                                                      revs, wait_batches):
        observations = stream(revs, wait_batches)
        controller = AdaptiveKController(0, config, seed=seed)
        previous_total = 0
        for obs in observations:
            k_before = controller.k
            controller.observe(obs)
            if obs.revocations > previous_total:
                assert controller.k <= k_before
            previous_total = obs.revocations
