"""Property-based tests for the parallel runner's payload encodings.

Two encodings carry table state across process boundaries and must be
lossless:

- the shared-memory staging of dense :class:`TableSnapshot` columns
  (:mod:`repro.parallel.shm`) — a snapshot staged into a sender arena and
  materialized by a receiver must reproduce the original rows exactly,
  and every degraded path (too small, arena full, wrong payload type)
  must fall back to ``None`` rather than corrupt;
- the delta changelog (:meth:`EntrySetTable.delta_since`) — merging the
  delta recorded since a cursor into a receiver that held the cursor-time
  snapshot must reach exactly the sender's current state, including
  across changelog compaction (stale cursor -> full resync).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar
from repro.core.entry import Entry
from repro.core.tables import EntrySetTable, TableSnapshot

_np = columnar.NUMPY

ops = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 3), st.integers(0, 40)),
    max_size=60,
)


@given(ops=ops, cut=st.integers(0, 60), sparse=st.booleans(),
       compaction_limit=st.sampled_from([3, 4096]))
@settings(deadline=None)
def test_delta_since_round_trip(ops, cut, sparse, compaction_limit):
    """full@cursor + delta_since(cursor) == full@now, for any op split."""
    n = 6
    sender = EntrySetTable(n, sparse=sparse)
    sender.enable_changelog()
    # A tiny compaction limit forces the stale-cursor path often.
    original_limit = EntrySetTable.CHANGELOG_LIMIT
    EntrySetTable.CHANGELOG_LIMIT = compaction_limit
    try:
        for pid, inc, sii in ops[:cut]:
            sender.insert(pid, Entry(inc, sii))
        receiver = EntrySetTable(n, sparse=sparse)
        receiver.merge_snapshot(sender.snapshot_columns())
        cursor = sender.changelog_position
        for pid, inc, sii in ops[cut:]:
            sender.insert(pid, Entry(inc, sii))
        delta = sender.delta_since(cursor)
        if delta is None:
            # Stale cursor (compaction crossed it): resync with a full
            # snapshot, exactly what the notification path does.
            receiver.merge_snapshot(sender.snapshot_columns())
        else:
            assert not delta.full
            receiver.merge_snapshot(delta)
        assert receiver.snapshot() == sender.snapshot()
    finally:
        EntrySetTable.CHANGELOG_LIMIT = original_limit


@pytest.mark.skipif(_np is None, reason="shm staging needs numpy")
class TestShmStaging:

    @given(
        snaps=st.lists(
            st.tuples(
                st.integers(1, 64),     # n
                st.integers(1, 8),      # stride
                st.integers(0, 2**31),  # value seed
            ),
            min_size=1, max_size=8,
        ),
        capacity=st.integers(64, 2048),
    )
    @settings(deadline=None, max_examples=50)
    def test_stage_materialize_round_trip(self, snaps, capacity):
        from repro.parallel.shm import (
            SHM_MIN_ENTRIES,
            ArenaMap,
            SnapshotArena,
            stage_snapshot,
        )

        arena = SnapshotArena(capacity_entries=capacity)
        try:
            peers = ArenaMap({0: arena.name}, own_id=0, own_arena=arena)
            staged = []
            for n, stride, seed in snaps:
                rng = _np.random.default_rng(seed)
                cols = rng.integers(-1, 50, size=n * stride, dtype=_np.int64)
                snap = TableSnapshot(n, stride, cols)
                ref = stage_snapshot(arena, 0, snap)
                if cols.size < SHM_MIN_ENTRIES:
                    assert ref is None
                if ref is None:
                    continue  # below threshold or arena full: pickle path
                staged.append((snap, ref))
            # Materialize only after all puts: staged blocks must not
            # alias or overwrite each other within an epoch.
            for snap, ref in staged:
                out = peers.materialize(ref)
                assert out.rows() == snap.rows()
                assert out.cols is not snap.cols
        finally:
            arena.close()

    def test_overflow_falls_back_to_none(self):
        from repro.parallel.shm import SnapshotArena, stage_snapshot

        arena = SnapshotArena(capacity_entries=512)
        try:
            big = TableSnapshot(
                64, 16, _np.zeros(64 * 16, dtype=_np.int64))
            assert stage_snapshot(arena, 0, big) is None  # 1024 > 512
            ok = TableSnapshot(32, 16, _np.zeros(32 * 16, dtype=_np.int64))
            first = stage_snapshot(arena, 0, ok)
            assert first is not None
            assert stage_snapshot(arena, 0, ok) is None  # arena now full
            arena.reset()
            assert stage_snapshot(arena, 0, ok) is not None
        finally:
            arena.close()

    def test_non_dense_payloads_are_not_staged(self):
        from repro.parallel.shm import SnapshotArena, stage_snapshot

        arena = SnapshotArena(capacity_entries=1024)
        try:
            listy = TableSnapshot(64, 8, [0] * 512)
            assert stage_snapshot(arena, 0, listy) is None
            assert stage_snapshot(arena, 0, {"not": "a snapshot"}) is None
            assert stage_snapshot(None, 0, listy) is None
        finally:
            arena.close()
