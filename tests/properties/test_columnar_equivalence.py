"""Differential properties: columnar hot state vs the reference model.

The columnar rewrite (PR 8) re-laid the dependency vector and both
bookkeeping tables as flat integer columns, keeping the pre-columnar
dict implementations as ``Reference*`` ground truth.  These tests drive
both implementations through the same random operation sequences —
set/nullify/merge/copy for vectors; insert/gossip-merge/incarnation
bumps for tables — and assert the observable state stays equal at every
step, including:

- the packed-query fast paths (``covers_packed``/``invalidates_packed``)
  agree with the Entry-based queries on both implementations;
- the COW/version-counter contract from PR 4: ``version`` bumps exactly
  when observable state changes, copies are O(1) aliases that detach on
  first mutation, and mutations never leak across a copy;
- ``version == 0`` iff an (append-only) table is empty — the invariant
  the protocol's fast exits rely on.

Table sizes cover both storage backends: small n uses plain lists,
n >= 64 uses numpy when available (see repro.core.columnar.NP_MIN_N).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import pack
from repro.core.depvec import DependencyVector, ReferenceDependencyVector
from repro.core.entry import Entry
from repro.core.tables import (
    EntrySetTable,
    IncarnationEndTable,
    LoggingProgressTable,
    ReferenceIncarnationEndTable,
    ReferenceLoggingProgressTable,
    TableSnapshot,
)

SIZES = [5, 64]  # list backend / numpy backend (when numpy is present)

# The op-sequence tests are the expensive ones; they run a reduced example
# count in tier-1 and the full hypothesis default x10 under the nightly
# profile (see tests/conftest.py).
_NIGHTLY = os.environ.get("HYPOTHESIS_PROFILE") == "nightly"
_SEQ = settings(max_examples=600 if _NIGHTLY else 60, deadline=None)
_TAB = settings(max_examples=400 if _NIGHTLY else 40, deadline=None)

entries = st.builds(Entry, inc=st.integers(0, 9), sii=st.integers(0, 50))


def pids(n):
    return st.integers(0, n - 1)


def entry_maps(n):
    return st.dictionaries(pids(n), entries, max_size=n)


def vector_ops(n):
    return st.lists(
        st.one_of(
            st.tuples(st.just("set"), pids(n), entries),
            st.tuples(st.just("nullify"), pids(n)),
            st.tuples(st.just("merge"), entry_maps(n)),
            st.tuples(st.just("copy")),
        ),
        max_size=30,
    )


def assert_vectors_equal(col, ref):
    assert col.as_dict() == ref.as_dict()
    assert len(col) == len(ref)
    assert col.non_null_count() == ref.non_null_count()
    assert list(col.items()) == list(ref.items())
    assert col == ref and ref == col


class TestVectorEquivalence:
    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_SEQ
    def test_random_op_sequences_stay_equal(self, n, data):
        ops = data.draw(vector_ops(n))
        col = DependencyVector(n)
        ref = ReferenceDependencyVector(n)
        copies = []
        for op in ops:
            if op[0] == "set":
                col.set(op[1], op[2])
                ref.set(op[1], op[2])
            elif op[0] == "nullify":
                col.nullify(op[1])
                ref.nullify(op[1])
            elif op[0] == "merge":
                # Piggyback-then-deliver: merge a message's vector, built
                # once per implementation from the same mapping.
                col.merge(DependencyVector(n, op[1]))
                ref.merge(ReferenceDependencyVector(n, op[1]))
            else:
                copies.append((col.copy(), ref.copy(), col.as_dict()))
            assert_vectors_equal(col, ref)
            assert col.version == ref.version
        # COW discipline: snapshots kept their state across later
        # mutations of the original, on both implementations.
        for col_copy, ref_copy, frozen in copies:
            assert col_copy.as_dict() == frozen
            assert ref_copy.as_dict() == frozen

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_SEQ
    def test_version_bumps_iff_observable_change(self, n, data):
        col = DependencyVector(n, data.draw(entry_maps(n)))
        ref = ReferenceDependencyVector(n, col.as_dict())
        for op in data.draw(vector_ops(n)):
            before = col.as_dict()
            col_v, ref_v = col.version, ref.version
            if op[0] == "set":
                col.set(op[1], op[2])
                ref.set(op[1], op[2])
            elif op[0] == "nullify":
                col.nullify(op[1])
                ref.nullify(op[1])
            elif op[0] == "merge":
                col.merge(DependencyVector(n, op[1]))
                ref.merge(ReferenceDependencyVector(n, op[1]))
            else:
                col.copy()
                ref.copy()
            changed = col.as_dict() != before
            assert (col.version > col_v) == changed
            assert (ref.version > ref_v) == changed

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_SEQ
    def test_copy_mutation_never_leaks_either_direction(self, n, data):
        col = DependencyVector(n, data.draw(entry_maps(n)))
        ref = ReferenceDependencyVector(n, col.as_dict())
        frozen = col.as_dict()
        col_copy, ref_copy = col.copy(), ref.copy()
        pid, entry = data.draw(pids(n)), data.draw(entries)
        if data.draw(st.booleans()):
            col.set(pid, entry)
            ref.set(pid, entry)
            assert col_copy.as_dict() == frozen == ref_copy.as_dict()
        else:
            col_copy.set(pid, entry)
            ref_copy.set(pid, entry)
            assert col.as_dict() == frozen == ref.as_dict()
        assert_vectors_equal(col, ref)
        assert_vectors_equal(col_copy, ref_copy)

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_SEQ
    def test_packed_accessors_agree_with_entry_form(self, n, data):
        col = DependencyVector(n, data.draw(entry_maps(n)))
        for pid in range(n):
            entry = col.get(pid)
            packed = col.get_packed(pid)
            if entry is None:
                assert packed == -1
            else:
                assert packed == pack(entry.inc, entry.sii)
        assert [(pid, pack(e.inc, e.sii)) for pid, e in col.items()] == list(
            col.iter_packed()
        )


def rows_strategy(n):
    return st.lists(
        st.dictionaries(st.integers(0, 9), st.integers(0, 50), max_size=4),
        min_size=n, max_size=n,
    )


def table_ops(n):
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), pids(n), entries),
            st.tuples(st.just("merge_legacy"), rows_strategy(n)),
            st.tuples(st.just("merge_snap"), rows_strategy(n)),
        ),
        max_size=15,
    )


def apply_table_op(table, op, columnar_side):
    if op[0] == "insert":
        table.insert(op[1], op[2])
    elif op[0] == "merge_legacy":
        table.merge_snapshot(op[1])
    else:
        # Columnar gossip path: rebuild the rows as a TableSnapshot so the
        # elementwise-max merge runs; the reference gets the same rows.
        if columnar_side:
            donor = EntrySetTable(table.n)
            donor.merge_snapshot(op[1])
            snap = donor.snapshot_columns()
            assert isinstance(snap, TableSnapshot)
            table.merge_snapshot(snap)
        else:
            table.merge_snapshot(op[1])


def assert_tables_equal(col, ref):
    assert col.snapshot() == ref.snapshot()
    assert col.snapshot_columns().rows() == ref.snapshot()
    for pid in range(col.n):
        assert list(col.entries(pid)) == list(ref.entries(pid))
        assert col.row_size(pid) == ref.row_size(pid)
        for inc in range(12):
            assert col.lookup(pid, inc) == ref.lookup(pid, inc)


class TestTableEquivalence:
    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_TAB
    def test_log_table_and_covers_queries(self, n, data):
        col = LoggingProgressTable(n)
        ref = ReferenceLoggingProgressTable(n)
        for op in data.draw(table_ops(n)):
            before = col.snapshot()
            version = col.version
            apply_table_op(col, op, columnar_side=True)
            apply_table_op(ref, op, columnar_side=False)
            assert (col.version > version) == (col.snapshot() != before)
            assert (col.version == 0) == (not any(col.snapshot()))
        assert_tables_equal(col, ref)
        for _ in range(10):
            pid, entry = data.draw(pids(n)), data.draw(entries)
            expected = ref.covers(pid, entry)
            assert col.covers(pid, entry) == expected
            assert col.covers_packed(pid, pack(entry.inc, entry.sii)) == expected

    @pytest.mark.parametrize("n", SIZES)
    @given(data=st.data())
    @_TAB
    def test_iet_table_and_orphan_queries(self, n, data):
        col = IncarnationEndTable(n)
        ref = ReferenceIncarnationEndTable(n)
        for op in data.draw(table_ops(n)):
            apply_table_op(col, op, columnar_side=True)
            apply_table_op(ref, op, columnar_side=False)
        assert_tables_equal(col, ref)
        for pid in range(n):
            assert (col.highest_ended_incarnation(pid)
                    == ref.highest_ended_incarnation(pid))
        assert sorted(col.all_pairs()) == sorted(ref.all_pairs())
        for _ in range(10):
            pid, entry = data.draw(pids(n)), data.draw(entries)
            expected = ref.invalidates(pid, entry)
            assert col.invalidates(pid, entry) == expected
            assert (col.invalidates_packed(pid, pack(entry.inc, entry.sii))
                    == expected)

    @pytest.mark.parametrize("n", SIZES)
    @given(inserts=st.lists(st.tuples(st.integers(0, 4), entries), max_size=20))
    def test_incarnation_bump_grows_stride_transparently(self, n, inserts):
        # Repeated crashes push incarnations past INITIAL_STRIDE; growth
        # must be invisible to every query.
        col = IncarnationEndTable(n)
        ref = ReferenceIncarnationEndTable(n)
        for bump, entry in inserts:
            entry = Entry(entry.inc + 4 * bump, entry.sii)
            col.insert(0, entry)
            ref.insert(0, entry)
        assert_tables_equal(col, ref)
        assert col.highest_ended_incarnation(0) == ref.highest_ended_incarnation(0)
