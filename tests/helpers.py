"""Shared test helpers: compact constructors for protocol objects,
messages, and effect extraction."""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Type

from repro.app.behavior import AppBehavior, AppContext, EchoBehavior
from repro.core.depvec import DependencyVector
from repro.core.effects import Effect
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import MessageId

_counter = itertools.count(1)


def make_proc(
    pid: int = 0,
    n: int = 4,
    k: int = 4,
    behavior: Optional[AppBehavior] = None,
    cls: Type[KOptimisticProcess] = KOptimisticProcess,
    **kwargs: Any,
) -> KOptimisticProcess:
    """An initialized protocol instance."""
    if cls is KOptimisticProcess:
        proc = cls(pid, n, k, behavior or EchoBehavior(), **kwargs)
    else:
        proc = cls(pid, n, k, behavior or EchoBehavior(), **kwargs)
    proc.initialize()
    return proc


def make_vector(n: int, entries: Dict[int, Entry]) -> DependencyVector:
    return DependencyVector(n, entries)


def make_msg(
    src: int,
    dst: int,
    n: int = 4,
    entries: Optional[Dict[int, Entry]] = None,
    payload: Any = None,
    send_interval: Optional[Entry] = None,
    seq: Optional[int] = None,
) -> AppMessage:
    """A hand-built application message.

    ``entries`` become the piggybacked vector; ``send_interval`` defaults
    to the sender's entry in the vector (or (0,1))."""
    entries = dict(entries or {})
    interval = send_interval or entries.get(src) or Entry(0, 1)
    entries.setdefault(src, interval)
    return AppMessage(
        msg_id=MessageId(src, interval.inc, interval.sii,
                         next(_counter) if seq is None else seq),
        src=src,
        dst=dst,
        payload=payload if payload is not None else {},
        tdv=DependencyVector(n, entries),
        send_interval=interval,
    )


def make_announcement(origin: int, inc: int, sii: int) -> FailureAnnouncement:
    return FailureAnnouncement(origin, Entry(inc, sii))


def effects_of(effects: List[Effect], effect_type: type) -> List[Effect]:
    """Filter an effects list by type."""
    return [e for e in effects if isinstance(e, effect_type)]


def deliver_env(proc: KOptimisticProcess, payload: Any = None) -> List[Effect]:
    """Inject an environment message (empty vector) and return effects."""
    msg = AppMessage(
        msg_id=MessageId(-1, 0, 0, next(_counter)),
        src=-1,
        dst=proc.pid,
        payload=payload if payload is not None else {},
        tdv=DependencyVector(proc.n),
    )
    return proc.on_receive(msg)
