"""Shared test helpers: compact constructors for protocol objects,
messages, simulation harnesses, and effect extraction."""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Type

from repro.app.behavior import AppBehavior, AppContext, EchoBehavior
from repro.core.depvec import DependencyVector
from repro.core.effects import Effect
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.net.message import AppMessage, FailureAnnouncement
from repro.types import MessageId

_counter = itertools.count(1)


def build_sim(
    n: int = 4,
    k: Optional[int] = None,
    seed: int = 0,
    failures: Any = None,
    workload: Any = None,
    rate: float = 0.5,
    until: Optional[float] = 200.0,
    protocol_factory: Any = None,
    **config_kwargs: Any,
):
    """One-stop scenario builder: config + workload + harness + install.

    This is the single shared constructor for end-to-end harness tests
    (previously duplicated as per-suite ``build()`` helpers).  ``workload``
    defaults to ``RandomPeersWorkload(rate=rate)``; ``until`` is the
    injection horizon (``None`` skips installation entirely, leaving a
    harness with no scheduled traffic).  Extra keyword arguments go to
    :class:`~repro.runtime.config.SimConfig`.
    """
    from repro.runtime.config import SimConfig
    from repro.runtime.harness import SimulationHarness
    from repro.workloads.random_peers import RandomPeersWorkload

    config = SimConfig(n=n, k=k, seed=seed, **config_kwargs)
    if workload is None:
        workload = RandomPeersWorkload(rate=rate)
    kwargs = {} if protocol_factory is None else {
        "protocol_factory": protocol_factory
    }
    harness = SimulationHarness(config, workload.behavior(),
                                failures=failures, **kwargs)
    if until is not None:
        workload.install(harness, until=until)
    return harness


def make_proc(
    pid: int = 0,
    n: int = 4,
    k: int = 4,
    behavior: Optional[AppBehavior] = None,
    cls: Type[KOptimisticProcess] = KOptimisticProcess,
    **kwargs: Any,
) -> KOptimisticProcess:
    """An initialized protocol instance."""
    if cls is KOptimisticProcess:
        proc = cls(pid, n, k, behavior or EchoBehavior(), **kwargs)
    else:
        proc = cls(pid, n, k, behavior or EchoBehavior(), **kwargs)
    proc.initialize()
    return proc


def make_vector(n: int, entries: Dict[int, Entry]) -> DependencyVector:
    return DependencyVector(n, entries)


def make_msg(
    src: int,
    dst: int,
    n: int = 4,
    entries: Optional[Dict[int, Entry]] = None,
    payload: Any = None,
    send_interval: Optional[Entry] = None,
    seq: Optional[int] = None,
) -> AppMessage:
    """A hand-built application message.

    ``entries`` become the piggybacked vector; ``send_interval`` defaults
    to the sender's entry in the vector (or (0,1))."""
    entries = dict(entries or {})
    interval = send_interval or entries.get(src) or Entry(0, 1)
    entries.setdefault(src, interval)
    return AppMessage(
        msg_id=MessageId(src, interval.inc, interval.sii,
                         next(_counter) if seq is None else seq),
        src=src,
        dst=dst,
        payload=payload if payload is not None else {},
        tdv=DependencyVector(n, entries),
        send_interval=interval,
    )


def make_announcement(origin: int, inc: int, sii: int) -> FailureAnnouncement:
    return FailureAnnouncement(origin, Entry(inc, sii))


def effects_of(effects: List[Effect], effect_type: type) -> List[Effect]:
    """Filter an effects list by type."""
    return [e for e in effects if isinstance(e, effect_type)]


def deliver_env(proc: KOptimisticProcess, payload: Any = None) -> List[Effect]:
    """Inject an environment message (empty vector) and return effects."""
    msg = AppMessage(
        msg_id=MessageId(-1, 0, 0, next(_counter)),
        src=-1,
        dst=proc.pid,
        payload=payload if payload is not None else {},
        tdv=DependencyVector(proc.n),
    )
    return proc.on_receive(msg)
