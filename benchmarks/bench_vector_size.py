"""E5 bench — regenerate the vector-size series (Theorem 2's payoff)."""

import pytest

from repro.core.baselines import strom_yemini_factory
from repro.experiments.runner import simulate
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

N = 6
DURATION = 400.0


def run_point(notify_interval, factory=None, fifo=False):
    config = SimConfig(n=N, k=None, seed=42, notify_interval=notify_interval,
                       fifo=fifo, trace_enabled=False)
    return simulate(
        config,
        RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8),
        protocol_factory=factory,
        duration=DURATION,
    )


@pytest.mark.parametrize("period", [5.0, 20.0, 80.0])
def test_vector_size_point(benchmark, period):
    metrics = benchmark.pedantic(run_point, args=(period,),
                                 rounds=3, iterations=1)
    assert metrics.violations == []
    assert 0.0 < metrics.mean_piggyback_entries < N


def test_vector_size_vs_notification_freshness(benchmark):
    def sweep():
        return {p: run_point(p) for p in (5.0, 80.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert (results[5.0].mean_piggyback_entries
            < results[80.0].mean_piggyback_entries)


def test_theorem2_beats_size_n_tracking(benchmark):
    def pair():
        return (run_point(20.0),
                run_point(20.0, factory=strom_yemini_factory, fifo=True))

    kopt, sy = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert kopt.mean_piggyback_entries < sy.mean_piggyback_entries
