"""E1 bench — the scripted Figure 1 re-enactment, timed.

Useful as a regression canary: the scenario exercises nearly every
protocol routine (restart, rollback, delayed delivery, Corollary 1,
Theorem 2, output commit) in a few hundred microseconds.
"""

from repro.core.entry import Entry
from repro.experiments.figure1 import figure1_async, figure1_koptimistic


def test_figure1_koptimistic(benchmark):
    result = benchmark(figure1_koptimistic)
    assert result.output_committed
    assert result.p3_rolled_back_to == Entry(2, 6)
    assert result.m6_delayed_until_r1


def test_figure1_fully_async(benchmark):
    result = benchmark(figure1_async)
    assert result.p3_broadcast_own_announcement
    assert result.m6_delayed_until_r1 is False
