"""E3 bench — regenerate the overhead-vs-K series and time the runs.

Each benchmark executes one point of the E3 sweep (shorter horizon than
the standalone experiment, same shape) and asserts the paper's claims on
the measured metrics before reporting timing.
"""

import pytest

from repro.experiments.runner import simulate
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

N = 6
DURATION = 400.0


def run_point(k):
    config = SimConfig(n=N, k=k, seed=42, trace_enabled=False)
    return simulate(config, RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8),
                    duration=DURATION)


@pytest.mark.parametrize("k", [0, 1, 3, N])
def test_overhead_point(benchmark, k):
    metrics = benchmark.pedantic(run_point, args=(k,), rounds=3, iterations=1)
    assert metrics.violations == []
    assert metrics.mean_piggyback_entries <= k + 1e-9  # Theorem 4's bound
    if k == N:
        assert metrics.mean_send_hold == 0.0
    if k == 0:
        assert metrics.mean_piggyback_entries == 0.0


def test_overhead_curve_shape(benchmark):
    """One benchmarked pass over the whole sweep, asserting monotonicity."""

    def sweep():
        return {k: run_point(k) for k in (0, 2, N)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    holds = [results[k].mean_send_hold for k in (0, 2, N)]
    assert holds[0] >= holds[1] >= holds[2]
    sizes = [results[k].mean_piggyback_entries for k in (0, 2, N)]
    assert sizes[0] <= sizes[1] <= sizes[2]
