"""E9/E10 benches — the related-work families, timed.

Regenerates the direct-vs-transitive tracking comparison and the lazy
checkpoint coordination sweep at benchmark scale, asserting the headline
shapes from EXPERIMENTS.md.
"""

import pytest

from repro.checkpointing import UNCOORDINATED, CheckpointConfig, CheckpointSimulation
from repro.experiments.direct_tracking import run as run_direct
from repro.failures.injector import FailureSchedule
from repro.workloads.random_peers import RandomPeersWorkload

DURATION = 300.0


def run_checkpoint_point(z):
    config = CheckpointConfig(n=5, z=z, seed=42)
    workload = RandomPeersWorkload(rate=0.5, min_hops=2, max_hops=5,
                                   output_fraction=0.0)
    sim = CheckpointSimulation(config, workload.behavior(),
                               failures=FailureSchedule.single(DURATION / 2, 1))
    workload.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    return sim.metrics()


@pytest.mark.parametrize("z", [1, 4, UNCOORDINATED])
def test_lazy_checkpointing_point(benchmark, z):
    metrics = benchmark.pedantic(run_checkpoint_point, args=(z,),
                                 rounds=3, iterations=1)
    assert metrics.crashes == 1
    if z == UNCOORDINATED:
        assert metrics.induced_checkpoints == 0


def test_lazy_checkpointing_tradeoff(benchmark):
    def sweep():
        return {z: run_checkpoint_point(z) for z in (1, UNCOORDINATED)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert (results[1].induced_checkpoints
            > results[UNCOORDINATED].induced_checkpoints)
    assert results[UNCOORDINATED].work_lost >= results[1].work_lost


def test_direct_tracking_comparison(benchmark):
    rows = benchmark.pedantic(run_direct, kwargs={"n": 4, "seed": 1},
                              rounds=1, iterations=1)
    schemes = {r["scheme"]: r for r in rows}
    assert schemes["direct (1 entry/msg)"]["pgb"] == 1.0
    assert (schemes["direct (1 entry/msg)"]["rollbacks"]
            > schemes["transitive, commit-dep (K=N)"]["rollbacks"])


def run_sender_based_point(with_crash):
    from repro.senderbased import SenderBasedConfig, SenderBasedSimulation

    config = SenderBasedConfig(n=5, seed=42)
    workload = RandomPeersWorkload(rate=0.5, min_hops=2, max_hops=5,
                                   output_fraction=0.0)
    failures = FailureSchedule.single(DURATION / 2, 1) if with_crash else None
    sim = SenderBasedSimulation(config, workload.behavior(), failures=failures)
    workload.install(sim, until=DURATION * 0.8)
    sim.run(DURATION)
    return sim


@pytest.mark.parametrize("with_crash", [False, True])
def test_sender_based_point(benchmark, with_crash):
    sim = benchmark.pedantic(run_sender_based_point, args=(with_crash,),
                             rounds=3, iterations=1)
    metrics = sim.metrics()
    assert metrics.deliveries > 100
    # The discipline's signature: far fewer sync writes than deliveries.
    assert metrics.sync_writes < metrics.deliveries / 2
    if with_crash:
        assert metrics.crashes == 1
        assert all(not p.recovering for p in sim.processes)
