"""E6 bench — regenerate the protocol-family comparison and time each
protocol's full run (failure-free *and* with a crash)."""

import pytest

from repro.core.baselines import (
    fully_async_factory,
    pessimistic_factory,
    strom_yemini_factory,
)
from repro.experiments.runner import simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

N = 6
DURATION = 400.0

VARIANTS = {
    "pessimistic": (0, pessimistic_factory, False),
    "k0": (0, None, False),
    "kn": (N, None, False),
    "strom_yemini": (None, strom_yemini_factory, True),
    "fully_async": (None, fully_async_factory, False),
}


def run_variant(name, with_crash):
    k, factory, fifo = VARIANTS[name]
    config = SimConfig(n=N, k=k, seed=42, fifo=fifo, trace_enabled=False)
    failures = FailureSchedule.single(DURATION / 2, 1) if with_crash else None
    return simulate(
        config,
        RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8),
        failures=failures,
        protocol_factory=factory,
        duration=DURATION,
    )


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_protocol_failure_free(benchmark, name):
    metrics = benchmark.pedantic(run_variant, args=(name, False),
                                 rounds=3, iterations=1)
    assert metrics.violations == []
    if name == "pessimistic":
        assert metrics.sync_writes >= metrics.messages_delivered


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_protocol_with_crash(benchmark, name):
    metrics = benchmark.pedantic(run_variant, args=(name, True),
                                 rounds=3, iterations=1)
    assert metrics.crashes == 1
    assert metrics.violations == []
    if name == "pessimistic":
        assert metrics.processes_rolled_back == 0


def test_family_shape(benchmark):
    def sweep():
        return {name: run_variant(name, True) for name in VARIANTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Pessimistic pays the most storage synchronization.
    assert results["pessimistic"].sync_writes > 2 * results["kn"].sync_writes
    # Commit dependency tracking beats size-N vectors.
    assert (results["kn"].mean_piggyback_entries
            < results["strom_yemini"].mean_piggyback_entries)
