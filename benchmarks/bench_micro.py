"""E8 — micro-benchmarks of the core data structures and hot paths.

These quantify the *mechanism* costs the paper argues about: dependency
vector merges (every delivery), stability lookups (every Check_send_buffer
pass), orphan tests (every announcement), and raw protocol delivery
throughput.
"""

import pytest

from repro.app.behavior import EchoBehavior
from repro.core.depvec import DependencyVector
from repro.core.entry import Entry
from repro.core.protocol import KOptimisticProcess
from repro.core.tables import IncarnationEndTable, LoggingProgressTable
from repro.net.message import AppMessage
from repro.sim.engine import Engine
from repro.types import MessageId

N = 32


def full_vector(n=N, inc=0):
    return DependencyVector(n, {pid: Entry(inc, pid + 1) for pid in range(n)})


class TestVectorOps:
    def test_merge_full_vectors(self, benchmark):
        a = full_vector()
        b = DependencyVector(N, {pid: Entry(1, pid + 5) for pid in range(N)})

        def merge():
            v = a.copy()
            v.merge(b)
            return v

        result = benchmark(merge)
        assert result.non_null_count() == N

    def test_merge_sparse_into_full(self, benchmark):
        a = full_vector()
        b = DependencyVector(N, {3: Entry(2, 9)})

        def merge():
            v = a.copy()
            v.merge(b)
            return v

        assert benchmark(merge).get(3) == Entry(2, 9)

    def test_copy(self, benchmark):
        a = full_vector()
        assert benchmark(a.copy) == a

    def test_copy_then_materialize(self, benchmark):
        # COW makes copy() itself O(1); this measures the full snapshot
        # cost including the deferred materialization on first write.
        a = full_vector()

        def copy_and_mutate():
            v = a.copy()
            v.set(0, Entry(3, 99))
            return v

        assert benchmark(copy_and_mutate).get(0) == Entry(3, 99)

    def test_merge_no_news(self, benchmark):
        # The dominant merge in steady state: the incoming vector adds
        # nothing, so the pre-scan must avoid materializing anything.
        a = full_vector()
        stale = DependencyVector(N, {pid: Entry(0, 1) for pid in range(N)})
        version = a.version

        def merge():
            a.merge(stale)
            return a

        benchmark(merge)
        assert a.version == version

    def test_non_null_count(self, benchmark):
        a = full_vector()
        assert benchmark(a.non_null_count) == N


class TestTableOps:
    def test_covers_lookup(self, benchmark):
        log = LoggingProgressTable(N)
        for pid in range(N):
            for inc in range(4):
                log.insert(pid, Entry(inc, 10 * (inc + 1)))
        entry = Entry(2, 25)
        assert benchmark(lambda: log.covers(7, entry)) is True

    def test_invalidates_scan(self, benchmark):
        iet = IncarnationEndTable(N)
        for pid in range(N):
            for inc in range(4):
                iet.insert(pid, Entry(inc, 10 * (inc + 1)))
        entry = Entry(1, 99)
        assert benchmark(lambda: iet.invalidates(7, entry)) is True

    def test_snapshot(self, benchmark):
        log = LoggingProgressTable(N)
        for pid in range(N):
            log.insert(pid, Entry(0, pid))
        snap = benchmark(log.snapshot)
        assert len(snap) == N


class TestProtocolThroughput:
    def _messages(self, count, n=8):
        msgs = []
        for i in range(count):
            sender = 1 + (i % (n - 1))
            msgs.append(AppMessage(
                msg_id=MessageId(sender, 0, i + 1, 0),
                src=sender, dst=0, payload={"i": i},
                tdv=DependencyVector(n, {sender: Entry(0, i + 1)}),
                send_interval=Entry(0, i + 1),
            ))
        return msgs

    def test_delivery_throughput(self, benchmark):
        msgs = self._messages(200)

        def deliver_all():
            proc = KOptimisticProcess(0, 8, 8, EchoBehavior())
            proc.initialize()
            for msg in msgs:
                proc.on_receive(msg)
            return proc

        proc = benchmark(deliver_all)
        assert proc.stats.deliveries == 200

    def test_flush_with_large_volatile_buffer(self, benchmark):
        msgs = self._messages(500)

        def fill_and_flush():
            proc = KOptimisticProcess(0, 8, 8, EchoBehavior())
            proc.initialize()
            for msg in msgs:
                proc.on_receive(msg)
            proc.flush()
            return proc

        proc = benchmark(fill_and_flush)
        assert proc.storage.messages_logged == 500

    def test_restart_replay_500_messages(self, benchmark):
        base = KOptimisticProcess(0, 8, 8, EchoBehavior())
        base.initialize()
        for msg in self._messages(500):
            base.on_receive(msg)
        base.flush()

        def crash_and_restart():
            base.crash()
            base.restart()
            return base

        proc = benchmark(crash_and_restart)
        assert proc.app_state["delivered"] == 500


class TestEngineThroughput:
    def test_schedule_and_drain_10k_events(self, benchmark):
        def run():
            engine = Engine()
            count = [0]
            for i in range(10_000):
                engine.schedule(float(i % 100), lambda: count.__setitem__(0, count[0] + 1))
            engine.run()
            return count[0]

        assert benchmark(run) == 10_000

    def test_cancel_heavy_timer_churn(self, benchmark):
        # The ack/retransmit pattern: most scheduled timers are cancelled
        # before they fire, so throughput depends on heap compaction.
        def run():
            engine = Engine()
            fired = [0]
            for i in range(10_000):
                handle = engine.schedule(
                    float(i % 100) + 1.0,
                    lambda: fired.__setitem__(0, fired[0] + 1),
                )
                if i % 10 != 0:
                    handle.cancel()
            engine.run()
            return fired[0]

        assert benchmark(run) == 1_000
