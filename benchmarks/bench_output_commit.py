"""E7 bench — regenerate the output-commit-latency series (telecom)."""

import pytest

from repro.experiments.runner import simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.telecom import TelecomWorkload

N = 6
DURATION = 400.0


def run_point(k, notify_interval=20.0, crash=False):
    config = SimConfig(n=N, k=k, seed=42, notify_interval=notify_interval,
                       trace_enabled=False)
    failures = FailureSchedule.single(DURATION / 2, 2) if crash else None
    return simulate(config, TelecomWorkload(rate=0.8), failures=failures,
                    duration=DURATION)


@pytest.mark.parametrize("k", [0, 3, N])
def test_output_latency_point(benchmark, k):
    metrics = benchmark.pedantic(run_point, args=(k,), rounds=3, iterations=1)
    assert metrics.outputs_committed > 0
    assert metrics.violations == []


def test_outputs_commit_faster_with_fresh_notifications(benchmark):
    def pair():
        return run_point(N, notify_interval=5.0), run_point(N, notify_interval=80.0)

    fresh, stale = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert fresh.mean_output_latency < stale.mean_output_latency


def test_billing_survives_crash(benchmark):
    metrics = benchmark.pedantic(run_point, args=(N,),
                                 kwargs={"crash": True}, rounds=1, iterations=1)
    assert metrics.crashes == 1
    assert metrics.outputs_committed > 0
    # simulate() would have raised on any revoked-output violation.
    assert metrics.violations == []
