"""E4 bench — regenerate the recovery-cost-vs-K series and time the runs."""

import pytest

from repro.experiments.runner import simulate
from repro.failures.injector import FailureSchedule
from repro.runtime.config import SimConfig
from repro.workloads.random_peers import RandomPeersWorkload

N = 6
DURATION = 400.0


def run_point(k):
    config = SimConfig(n=N, k=k, seed=42, trace_enabled=False)
    return simulate(
        config,
        RandomPeersWorkload(rate=0.6, min_hops=3, max_hops=8),
        failures=FailureSchedule.single(DURATION / 2, 1),
        duration=DURATION,
    )


@pytest.mark.parametrize("k", [0, 3, N])
def test_recovery_point(benchmark, k):
    metrics = benchmark.pedantic(run_point, args=(k,), rounds=3, iterations=1)
    assert metrics.crashes == 1
    assert metrics.violations == []
    if k == 0:
        # Localized recovery: nobody else rolls back.
        assert metrics.processes_rolled_back == 0
        assert metrics.intervals_undone == 0


def test_recovery_scope_grows_with_k(benchmark):
    def sweep():
        return {k: run_point(k) for k in (0, N)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert (results[N].processes_rolled_back
            >= results[0].processes_rolled_back)
    assert results[N].intervals_undone >= results[0].intervals_undone
