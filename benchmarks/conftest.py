"""Benchmark configuration: shared helpers for the pytest-benchmark suite.

Benchmarks double as the regeneration harness for the experiment tables
(DESIGN.md E3-E8): each bench runs the corresponding experiment
configuration, asserts the paper's qualitative shape on the result, and
reports the wall-clock cost of the run.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    # Keep benchmark output compact and deterministic-ish.
    config.option.benchmark_min_rounds = getattr(
        config.option, "benchmark_min_rounds", 5
    )
