"""Benchmark configuration: shared helpers for the pytest-benchmark suite.

Benchmarks double as the regeneration harness for the experiment tables
(DESIGN.md E3-E8): each bench runs the corresponding experiment
configuration, asserts the paper's qualitative shape on the result, and
reports the wall-clock cost of the run.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    # Keep benchmark output compact and deterministic-ish: guarantee at
    # least five rounds per bench.  The option must only be written when
    # it is genuinely absent — a getattr-with-default on an attribute the
    # plugin already populated reads the live value back and reassigns it,
    # silently changing nothing.
    if getattr(config.option, "benchmark_min_rounds", None) is None:
        config.option.benchmark_min_rounds = 5
